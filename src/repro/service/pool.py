"""One shared process pool, many concurrent jobs: the service's engine.

Multiprocessing primitives cannot be sent to a worker after it has
started, so dynamic multi-tenancy is built from a *fixed* set of
**lanes** created before the workers spawn: each lane is one
:class:`~repro.concurrentsub.workqueue.ProcessWorkQueue` plus a slot in
two small shared arrays (claim weight, generation).  A job occupies a
free lane for the duration of its run and returns it; lanes are reused
via the queue's ``reset()``.

Every worker process tours **all** lanes forever::

    for each lane:  read weight w  ->  try_claim(w)  ->  run tasks

so the per-job ``claim_weight`` is the fairness/QoS knob from the
weighted ticket protocol (§III-E generalized): when two jobs compete
for the same workers, a weight-2 job's lane hands out two tasks per
worker visit against a weight-1 neighbor's one — proportional service
from one atomic fetch-add, observable in the claim batch sizes the
status API reports.

Crash containment is per *job*, not per pool:

* a task that **raises** is reported as that task's failure — the
  worker survives and keeps serving other lanes;
* a worker that **dies** (segfault, OOM kill) is detected by the
  parent's pump thread; only the tasks that worker held — recorded in a
  shared *holds* array the worker writes synchronously before running a
  batch, because a dying process can't be trusted to flush its event
  queue — fail on their jobs, and a replacement worker is spawned.
  Neighbor jobs never see it.
* a parent that is **SIGKILLed** cannot tell anyone; workers notice the
  orphaning (``getppid`` flips) and exit on their own, so a dead
  service never leaves spinning processes behind.

Generations make lane reuse safe: every task carries its lane's
generation, the pump drops events from past generations, and a worker
skips a claimed task whose generation is stale — a cancelled job's
leftovers can neither consume CPU nor be mistaken for the next
tenant's results.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import signal
import threading
import time
import traceback

from ..concurrentsub.workqueue import ProcessWorkQueue, QueueClosed
from ..parallel.pool import default_context
from .tasks import run_task


class TasksFailed(RuntimeError):
    """One or more tasks of a session failed; carries per-task errors."""

    def __init__(self, errors: dict) -> None:
        lines = "\n".join(
            f"  {tid}: {text.strip().splitlines()[-1]}"
            for tid, text in sorted(errors.items())
        )
        super().__init__(f"{len(errors)} task(s) failed:\n{lines}")
        self.errors = errors


class SessionCancelled(RuntimeError):
    """The session was cancelled while tasks were pending."""


class LaneStalled(RuntimeError):
    """No task activity within the stall timeout — work was lost."""


def _service_worker(worker_id: int, lanes, weights, gens, holds, out,
                    parent_pid: int, poll_seconds: float) -> None:
    """Body of one pool worker: tour lanes, claim by weight, run tasks.

    Lives until the pool terminates it or the parent vanishes.  All
    arguments are multiprocessing primitives handed over at spawn; no
    shared memory is involved (tasks are file-based by design).
    """
    try:
        # Die promptly on the pool's terminate(); see parallel.pool.
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):  # pragma: no cover - exotic host
        pass
    while True:
        if os.getppid() != parent_pid:
            return  # orphaned: the service was SIGKILLed
        claimed_any = False
        for lane_id, lane in enumerate(lanes):
            with weights.get_lock():
                weight = int(weights[lane_id])
            if weight <= 0:
                continue
            try:
                tasks = lane.try_claim(weight)
            except QueueClosed:  # pragma: no cover - torn-down lane
                continue
            if not tasks:
                continue
            claimed_any = True
            batch_ids = [t.get("task_id") for t in tasks]
            batch_gen = int(tasks[0].get("gen", 0))
            # Record the held batch *synchronously* before running it:
            # if this process dies mid-task, the out-queue's feeder
            # thread dies with it, so events alone cannot attribute the
            # loss.  Claims are contiguous seq ranges, hence 4 slots.
            base = worker_id * 4
            with holds.get_lock():
                holds[base] = lane_id
                holds[base + 1] = batch_gen
                holds[base + 2] = int(tasks[0].get("seq", 0))
                holds[base + 3] = len(tasks)
            out.put(("claimed", worker_id, lane_id, batch_gen, None,
                     batch_ids))
            for task in tasks:
                gen = int(task.get("gen", 0))
                with gens.get_lock():
                    current = int(gens[lane_id])
                if gen != current:
                    continue  # cancelled tenant's leftover; skip silently
                task_id = task.get("task_id")
                try:
                    result = run_task(task)
                except Exception:
                    out.put(("task_error", worker_id, lane_id, gen,
                             task_id, traceback.format_exc()))
                else:
                    out.put(("done", worker_id, lane_id, gen, task_id,
                             result))
            with holds.get_lock():
                holds[base + 3] = 0  # batch settled; nothing held
        if not claimed_any:
            time.sleep(poll_seconds)


class LaneSession:
    """One job's tenancy of one lane: submit tasks, wait, observe.

    Parent-side only.  All mutable state is guarded by ``_cond`` (the
    pump thread delivers into it; the runner thread waits on it).
    """

    def __init__(self, pool: "ServicePool", lane_id: int, gen: int,
                 queue: ProcessWorkQueue, claim_weight: int) -> None:
        self.pool = pool
        self.lane_id = lane_id
        self.gen = gen
        self.claim_weight = claim_weight
        self._queue = queue
        self._cond = threading.Condition()
        self._seq = 0
        self._pending: dict[str, dict] = {}
        self._done: dict[str, dict] = {}
        self._delivered: set[str] = set()
        self._errors: dict[str, str] = {}
        self._claim_batches: list[dict] = []
        self._cancelled = False
        self.released = False

    # -- submission --------------------------------------------------------------

    def submit(self, tasks: list[dict]) -> list[str]:
        """Tag, register, and publish tasks to this session's lane."""
        task_ids = []
        with self._cond:
            if self._cancelled:
                raise SessionCancelled("submit on a cancelled session")
            if self.released:
                raise RuntimeError("submit on a released session")
            for task in tasks:
                seq = self._seq
                self._seq += 1
                task_id = f"L{self.lane_id}g{self.gen}t{seq:04d}"
                task = dict(task)
                task["task_id"] = task_id
                task["gen"] = self.gen
                task["seq"] = seq
                self._pending[task_id] = task
                task_ids.append(task_id)
                self._queue.publish(task)
        return task_ids

    def task_id_for_seq(self, seq: int) -> str:
        return f"L{self.lane_id}g{self.gen}t{seq:04d}"

    # -- event delivery (called by the pool's pump thread) -----------------------

    def _deliver(self, kind: str, worker_id: int, task_id: str | None,
                 payload) -> None:
        with self._cond:
            if kind == "claimed":
                self._claim_batches.append(
                    {"worker": worker_id, "n_tasks": len(payload)}
                )
            elif kind == "done":
                if task_id in self._pending:
                    del self._pending[task_id]
                    self._done[task_id] = payload
            elif kind == "task_error":
                if task_id in self._pending:
                    del self._pending[task_id]
                    self._errors[task_id] = payload
            self._cond.notify_all()

    def _fail_tasks(self, task_ids, reason: str) -> None:
        """A worker died holding these; they will never settle."""
        with self._cond:
            failed_any = False
            for task_id in task_ids:
                if task_id in self._pending:
                    del self._pending[task_id]
                    self._errors[task_id] = reason
                    failed_any = True
            if failed_any:
                self._cond.notify_all()

    # -- waiting -----------------------------------------------------------------

    def wait(self, stall_timeout: float = 600.0,
             on_done=None) -> dict[str, dict]:
        """Block until every submitted task settled; return results.

        ``on_done(task_id, result)`` fires for each completion *as it
        arrives* (outside the session lock) — the runner's hook for
        writing per-partition manifests incrementally, which is what
        makes mid-stage kills resumable.

        ``stall_timeout`` bounds *inactivity*, not total runtime: it
        resets on every settlement, and backstops the rare loss where a
        worker died between claiming and announcing the claim.
        """
        deadline = time.monotonic() + stall_timeout
        while True:
            with self._cond:
                fresh = [
                    tid for tid in self._done if tid not in self._delivered
                ]
                self._delivered.update(fresh)
                if not fresh:
                    if self._cancelled:
                        raise SessionCancelled("session cancelled")
                    if not self._pending:
                        break
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        lost = sorted(self._pending)
                        raise LaneStalled(
                            f"no task activity for {stall_timeout:.0f}s; "
                            f"unsettled: {lost[:8]}"
                            + ("..." if len(lost) > 8 else "")
                        )
                    self._cond.wait(min(0.2, remaining))
                    continue
            for task_id in fresh:
                if on_done is not None:
                    on_done(task_id, self._done[task_id])
            deadline = time.monotonic() + stall_timeout
        with self._cond:
            if self._errors:
                raise TasksFailed(dict(self._errors))
            return dict(self._done)

    # -- control -----------------------------------------------------------------

    def cancel(self) -> None:
        """Stop serving this session; pending tasks will never settle."""
        self.pool._cancel_session(self)
        with self._cond:
            self._cancelled = True
            self._pending.clear()
            self._cond.notify_all()

    def set_weight(self, claim_weight: int) -> None:
        """Retune this job's QoS weight while it runs."""
        if claim_weight < 1:
            raise ValueError("claim_weight must be >= 1")
        self.claim_weight = claim_weight
        self.pool._set_lane_weight(self.lane_id, claim_weight)

    def describe(self) -> dict:
        """Fairness observability: weights and claim batches."""
        with self._cond:
            return {
                "lane": self.lane_id,
                "claim_weight": self.claim_weight,
                "n_pending": len(self._pending),
                "n_done": len(self._done),
                "n_errors": len(self._errors),
                "claim_batches": list(self._claim_batches),
            }


class ServicePool:
    """The shared worker pool all jobs of one service instance use."""

    def __init__(self, n_workers: int = 2, n_lanes: int = 4,
                 lane_capacity: int = 4096,
                 ctx: mp.context.BaseContext | None = None,
                 poll_seconds: float = 0.02) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if n_lanes < 1:
            raise ValueError("n_lanes must be >= 1")
        self.n_workers = n_workers
        self.n_lanes = n_lanes
        self.poll_seconds = poll_seconds
        self._ctx = ctx or default_context()
        self._lanes = [
            ProcessWorkQueue(lane_capacity, ctx=self._ctx)
            for _ in range(n_lanes)
        ]
        self._weights = self._ctx.Array("q", n_lanes)
        self._gens = self._ctx.Array("q", n_lanes)
        self._holds = self._ctx.Array("q", n_workers * 4)
        self._events = self._ctx.Queue()
        self._lock = threading.Lock()
        self._free_cond = threading.Condition(self._lock)
        self._free = list(range(n_lanes))
        self._sessions: dict[int, LaneSession] = {}
        self._lane_gen = [0] * n_lanes
        self._procs: list = []
        self._pump_thread: threading.Thread | None = None
        self._closing = False
        self._started = False
        self.n_worker_restarts = 0

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "ServicePool":
        if self._started:
            return self
        self._started = True
        self._procs = [self._spawn_worker(w) for w in range(self.n_workers)]
        self._pump_thread = threading.Thread(
            target=self._pump, name="service-pool-pump", daemon=True
        )
        self._pump_thread.start()
        return self

    def _spawn_worker(self, worker_id: int):
        proc = self._ctx.Process(
            target=_service_worker,
            args=(worker_id, self._lanes, self._weights, self._gens,
                  self._holds, self._events, os.getpid(),
                  self.poll_seconds),
            name=f"repro-service-{worker_id}", daemon=True,
        )
        proc.start()
        return proc

    def close(self) -> None:
        with self._lock:
            if self._closing:
                return
            self._closing = True
        for lane in self._lanes:
            lane.abort()
        # Stop the pump before terminating workers: the pump respawns
        # dead workers, and a respawn landing in ``_procs`` after the
        # terminate loop below would leave an untracked live process
        # (which, under fork, keeps touring lane counters whose shared
        # heap blocks the next pool may reuse).
        if self._pump_thread is not None:
            self._pump_thread.join(timeout=10.0)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=10.0)
        self._events.close()

    def __enter__(self) -> "ServicePool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- sessions ----------------------------------------------------------------

    def open_session(self, claim_weight: int = 1,
                     timeout: float = 30.0) -> LaneSession:
        """Claim a free lane for one job; blocks while all lanes busy."""
        if claim_weight < 1:
            raise ValueError("claim_weight must be >= 1")
        if not self._started:
            raise RuntimeError("pool not started")
        deadline = time.monotonic() + timeout
        with self._free_cond:
            while not self._free:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"all {self.n_lanes} lanes busy for {timeout:.0f}s"
                    )
                self._free_cond.wait(remaining)
            lane_id = self._free.pop(0)
            self._lane_gen[lane_id] += 1
            gen = self._lane_gen[lane_id]
            session = LaneSession(self, lane_id, gen,
                                  self._lanes[lane_id], claim_weight)
            self._sessions[lane_id] = session
        with self._gens.get_lock():
            self._gens[lane_id] = gen
        with self._weights.get_lock():
            self._weights[lane_id] = claim_weight
        return session

    def release(self, session: LaneSession) -> None:
        """Return a session's lane to the free list, drained and reset."""
        if session.released:
            return
        session.released = True
        self._quiesce_lane(session.lane_id)
        with self._free_cond:
            if self._sessions.get(session.lane_id) is session:
                del self._sessions[session.lane_id]
            self._free.append(session.lane_id)
            self._free_cond.notify_all()

    def _cancel_session(self, session: LaneSession) -> None:
        self._quiesce_lane(session.lane_id)

    def _quiesce_lane(self, lane_id: int) -> None:
        """Weight to 0, drain unclaimed leftovers, rewind the queue."""
        with self._weights.get_lock():
            self._weights[lane_id] = 0
        lane = self._lanes[lane_id]
        while True:
            try:
                leftovers = lane.try_claim(64)
            except QueueClosed:  # pragma: no cover - aborted at close
                break
            if not leftovers:
                break
        try:
            lane.reset()
        except RuntimeError:  # pragma: no cover - claim race; next tenant
            pass              # inherits a drained-but-unrewound queue

    def _set_lane_weight(self, lane_id: int, claim_weight: int) -> None:
        with self._weights.get_lock():
            self._weights[lane_id] = claim_weight

    # -- pump: event delivery + worker liveness ----------------------------------

    def _pump(self) -> None:
        while True:
            with self._lock:
                if self._closing:
                    return
            try:
                event = self._events.get(timeout=0.2)
            except (queue_mod.Empty, OSError, EOFError):
                self._check_workers()
                continue
            kind, worker_id, lane_id, gen, task_id, payload = event
            with self._lock:
                session = self._sessions.get(lane_id)
            if session is None or session.gen != gen:
                continue  # past tenant's leftover event
            session._deliver(kind, worker_id, task_id, payload)

    def _check_workers(self) -> None:
        """Contain worker deaths: fail their held tasks, respawn."""
        for idx, proc in enumerate(self._procs):
            if proc.is_alive():
                continue
            base = idx * 4
            with self._holds.get_lock():
                lane_id = int(self._holds[base])
                gen = int(self._holds[base + 1])
                first_seq = int(self._holds[base + 2])
                n_held = int(self._holds[base + 3])
                self._holds[base + 3] = 0
            with self._lock:
                if self._closing:
                    return
                session = self._sessions.get(lane_id)
                self.n_worker_restarts += 1
                # Respawn under the same ``_closing`` check: done
                # outside the lock, close() could terminate the old
                # proc list and miss a replacement stored just after.
                self._procs[idx] = self._spawn_worker(idx)
            if n_held > 0 and session is not None and session.gen == gen:
                reason = (
                    f"worker {idx} died (exit code {proc.exitcode}) "
                    f"while holding this task"
                )
                held_ids = [
                    session.task_id_for_seq(seq)
                    for seq in range(first_seq, first_seq + n_held)
                ]
                session._fail_tasks(held_ids, reason)

    # -- observability -----------------------------------------------------------

    def describe(self) -> dict:
        with self._lock:
            busy = sorted(self._sessions)
            return {
                "n_workers": self.n_workers,
                "n_lanes": self.n_lanes,
                "busy_lanes": busy,
                "free_lanes": len(self._free),
                "n_worker_restarts": self.n_worker_restarts,
            }
