"""The asyncio HTTP front end: submit, watch, cancel, fetch.

Stdlib only (``asyncio.start_server`` + hand-rolled HTTP/1.1 parsing —
the container has no aiohttp, and the API surface is five endpoints).
The event loop never blocks on a build: each accepted job runs on its
own thread, which acquires a lane from the shared
:class:`~repro.service.pool.ServicePool`, drives
:func:`~repro.service.runner.run_job`, and releases the lane — so many
jobs proceed concurrently over one pool, weighted by their
``claim_weight``.

Endpoints
---------

=======  ==========================  =======================================
POST     ``/jobs``                   submit a job (body = JobSpec JSON)
GET      ``/jobs``                   list all jobs with status
GET      ``/jobs/<id>``              one job's status + live fairness view
POST     ``/jobs/<id>/cancel``       cancel a queued/running job
POST     ``/jobs/<id>/resume``       re-run a failed/killed job's stages
GET      ``/jobs/<id>/artifact``     download the final ``graph.phdbg``
GET      ``/healthz``                liveness + pool occupancy
=======  ==========================  =======================================
"""

from __future__ import annotations

import asyncio
import json
import threading

from .jobstore import JobError, JobSpec, JobStore
from .pool import ServicePool
from .runner import run_job

_MAX_BODY = 1 << 20  # job specs are small; anything bigger is abuse


class _ActiveJob:
    """Parent-side handle for one accepted job's worker thread."""

    def __init__(self, job_id: str) -> None:
        self.job_id = job_id
        self.thread: threading.Thread | None = None
        self.session = None
        self._lock = threading.Lock()
        self._cancel_requested = False

    def attach_session(self, session) -> bool:
        """Record the acquired lane; False if cancel already arrived."""
        with self._lock:
            if self._cancel_requested:
                return False
            self.session = session
            return True

    def cancel(self) -> None:
        with self._lock:
            self._cancel_requested = True
            session = self.session
        if session is not None:
            session.cancel()

    @property
    def cancel_requested(self) -> bool:
        with self._lock:
            return self._cancel_requested

    def describe_session(self) -> dict | None:
        with self._lock:
            session = self.session
        return session.describe() if session is not None else None


class ServiceApp:
    """Routing + job lifecycle over one store and one pool."""

    def __init__(self, store: JobStore, pool: ServicePool,
                 lane_timeout: float = 3600.0,
                 stall_timeout: float = 600.0) -> None:
        self.store = store
        self.pool = pool
        self.lane_timeout = lane_timeout
        self.stall_timeout = stall_timeout
        self._lock = threading.Lock()
        self._active: dict[str, _ActiveJob] = {}

    # -- job lifecycle -----------------------------------------------------------

    def submit(self, spec: JobSpec) -> str:
        record = self.store.create(spec)
        self._launch(record)
        return record.job_id

    def resume(self, job_id: str) -> None:
        record = self.store.load(job_id)  # raises JobError if unknown
        with self._lock:
            if job_id in self._active:
                raise JobError(f"job {job_id} is already active")
        if record.status == "done":
            raise JobError(f"job {job_id} already completed")
        self._launch(record)

    def _launch(self, record) -> None:
        active = _ActiveJob(record.job_id)
        with self._lock:
            self._active[record.job_id] = active

        def drive() -> None:
            session = None
            try:
                session = self.pool.open_session(
                    claim_weight=record.spec.claim_weight,
                    timeout=self.lane_timeout,
                )
                if not active.attach_session(session):
                    record.set_state("cancelled")
                    return
                run_job(record, session, stall_timeout=self.stall_timeout)
            except Exception:
                # run_job already stamped failed/cancelled into
                # status.json; a lane-acquisition timeout needs its own.
                if record.status == "queued":
                    record.set_state("failed",
                                     error="no pool lane became free")
            finally:
                if session is not None:
                    self.pool.release(session)
                with self._lock:
                    self._active.pop(record.job_id, None)

        active.thread = threading.Thread(
            target=drive, name=f"job-{record.job_id}", daemon=True
        )
        active.thread.start()

    def cancel(self, job_id: str) -> dict:
        record = self.store.load(job_id)
        with self._lock:
            active = self._active.get(job_id)
        if active is not None:
            active.cancel()
        elif record.status in ("queued", "running"):
            # Not active in *this* server (e.g. killed owner): the status
            # alone flips; nothing is executing.
            record.set_state("cancelled")
        return record.describe()

    def describe_job(self, job_id: str) -> dict:
        record = self.store.load(job_id)
        doc = record.describe()
        with self._lock:
            active = self._active.get(job_id)
        if active is not None:
            doc["active"] = True
            lane = active.describe_session()
            if lane is not None:
                doc["lane"] = lane
        else:
            doc["active"] = False
        return doc

    # -- routing -----------------------------------------------------------------

    def route(self, method: str, path: str,
              body: bytes) -> tuple[int, bytes, str]:
        """Dispatch one request; returns (status, payload, content-type)."""
        try:
            return self._route(method, path, body)
        except JobError as exc:
            return _json_reply(404 if "no such job" in str(exc) else 400,
                               {"error": str(exc)})
        except Exception as exc:  # never let a handler kill the server
            return _json_reply(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _route(self, method: str, path: str,
               body: bytes) -> tuple[int, bytes, str]:
        parts = [p for p in path.split("?", 1)[0].split("/") if p]
        if parts == ["healthz"] and method == "GET":
            return _json_reply(200, {"ok": True,
                                     "pool": self.pool.describe()})
        if parts == ["jobs"]:
            if method == "GET":
                return _json_reply(200, {
                    "jobs": [r.describe() for r in self.store.list_jobs()]
                })
            if method == "POST":
                try:
                    doc = json.loads(body or b"{}")
                except json.JSONDecodeError as exc:
                    return _json_reply(400, {"error": f"bad JSON: {exc}"})
                job_id = self.submit(JobSpec.from_dict(doc))
                return _json_reply(201, {"id": job_id})
        if len(parts) == 2 and parts[0] == "jobs" and method == "GET":
            return _json_reply(200, self.describe_job(parts[1]))
        if len(parts) == 3 and parts[0] == "jobs":
            job_id, action = parts[1], parts[2]
            if action == "cancel" and method == "POST":
                return _json_reply(200, self.cancel(job_id))
            if action == "resume" and method == "POST":
                self.resume(job_id)
                return _json_reply(202, {"id": job_id, "resumed": True})
            if action == "artifact" and method == "GET":
                record = self.store.load(job_id)
                if record.status != "done" \
                        or not record.graph_path.is_file():
                    return _json_reply(409, {
                        "error": f"job {job_id} has no finished artifact "
                                 f"(status: {record.status})"
                    })
                return (200, record.graph_path.read_bytes(),
                        "application/octet-stream")
        return _json_reply(404, {"error": f"no route {method} {path}"})


def _json_reply(status: int, doc: dict) -> tuple[int, bytes, str]:
    return (status,
            json.dumps(doc, indent=2, sort_keys=True).encode("utf-8"),
            "application/json")


_REASONS = {200: "OK", 201: "Created", 202: "Accepted",
            400: "Bad Request", 404: "Not Found", 409: "Conflict",
            500: "Internal Server Error"}


async def _handle_connection(app: ServiceApp,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
    try:
        request_line = await asyncio.wait_for(reader.readline(), timeout=30)
        words = request_line.decode("latin1").split()
        if len(words) < 2:
            return
        method, path = words[0].upper(), words[1]
        headers: dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=30)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            status, payload, ctype = _json_reply(
                400, {"error": "request body too large"})
        else:
            body = await reader.readexactly(length) if length else b""
            # Handlers may touch locks and disk; keep the loop responsive.
            status, payload, ctype = await asyncio.get_running_loop() \
                .run_in_executor(None, app.route, method, path, body)
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin1") + payload)
        await writer.drain()
    except (asyncio.IncompleteReadError, asyncio.TimeoutError,
            ConnectionError):
        pass  # client went away; nothing to answer
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:  # pragma: no cover - raced close
            pass


async def serve(app: ServiceApp, host: str = "127.0.0.1",
                port: int = 8541,
                ready: threading.Event | None = None,
                bound: list | None = None) -> None:
    """Serve until cancelled.  ``ready``/``bound`` report the actual
    bind (port 0 picks a free port) to a waiting thread."""
    server = await asyncio.start_server(
        lambda r, w: _handle_connection(app, r, w), host=host, port=port
    )
    if bound is not None:
        bound.append(server.sockets[0].getsockname()[:2])
    if ready is not None:
        ready.set()
    async with server:
        await server.serve_forever()


class ServerHandle:
    """A server running on a background thread (tests, embedding)."""

    def __init__(self, app: ServiceApp, host: str, port: int,
                 thread: threading.Thread,
                 loop: asyncio.AbstractEventLoop,
                 server_task: "asyncio.Task") -> None:
        self.app = app
        self.host = host
        self.port = port
        self._thread = thread
        self._loop = loop
        self._server_task = server_task

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        """Stop accepting, drain in-flight requests, stop the loop."""

        async def shutdown() -> None:
            self._server_task.cancel()
            try:
                await self._server_task
            except asyncio.CancelledError:
                pass
            # In-flight connection handlers finish in milliseconds;
            # drain rather than cancel so none logs a late error.
            others = [
                task for task in asyncio.all_tasks()
                if task is not asyncio.current_task()
            ]
            if others:
                await asyncio.wait(others, timeout=5.0)
            asyncio.get_running_loop().stop()

        asyncio.run_coroutine_threadsafe(shutdown(), self._loop)
        self._thread.join(timeout=10.0)


def serve_in_thread(app: ServiceApp, host: str = "127.0.0.1",
                    port: int = 0) -> ServerHandle:
    """Start the HTTP server on a daemon thread; returns its handle."""
    ready = threading.Event()
    bound: list = []
    tasks: list = []
    loop = asyncio.new_event_loop()

    def runner() -> None:
        asyncio.set_event_loop(loop)
        tasks.append(
            loop.create_task(serve(app, host, port, ready=ready,
                                   bound=bound))
        )
        loop.run_forever()
        loop.run_until_complete(loop.shutdown_asyncgens())
        loop.close()

    thread = threading.Thread(target=runner, name="repro-serve",
                              daemon=True)
    thread.start()
    if not ready.wait(timeout=10.0):
        raise RuntimeError("HTTP server failed to start")
    actual_host, actual_port = bound[0]
    return ServerHandle(app, actual_host, actual_port, thread, loop,
                        tasks[0])
