"""The checkpointed stage graph that executes one job.

The pipeline phases of :class:`repro.core.parahash.ParaHash` are recast
as a DAG of manifest-guarded stages over the job directory::

    step1_t0000 ... step1_t{N}    one per input piece   (pool tasks)
              \\   |   /
               merge              spills -> canonical partitions (parent)
              /   |   \\
    step2_p0000 ... step2_p{P}    one per partition     (pool tasks)
              \\   |   /
               finalize           subgraph union -> graph.phdbg (parent)

Before running a stage the runner asks its manifest: *same params, same
input digests, outputs intact?*  If yes the stage is **skipped** and
its recorded outputs feed the next stage; if no it re-runs.  Because
Step-2 manifests are written per partition *as each completion event
arrives* (the session's ``on_done`` hook), a run killed mid-Step-2
resumes from the last finished partition — re-running only the
unfinished ones — instead of from the top.

The runner never talks to shared memory: pool tasks read and write job
files (see :mod:`repro.service.tasks`), so every checkpoint is durable
the instant its manifest lands.
"""

from __future__ import annotations

import time
from pathlib import Path

from .jobstore import JobRecord
from .manifest import Artifact, StageManifest, file_digest, fresh_manifest
from .pool import LaneSession, SessionCancelled
from .tasks import atomic_replace, run_task


class JobFailed(RuntimeError):
    """The job could not be completed; status.json has the detail."""


def _stage_is_valid(record: JobRecord, stage: str, params: dict,
                    inputs: dict) -> tuple[StageManifest | None, str]:
    """Load + validate one stage manifest against the current run."""
    manifest = StageManifest.load(record.manifest_path(stage))
    if manifest is None:
        return None, "no manifest"
    ok, reason = manifest.validate(params, inputs, record.job_dir)
    return (manifest, reason) if ok else (None, reason)


def _execute(tasks: list[dict], session: LaneSession | None,
             on_done, stall_timeout: float) -> None:
    """Run tasks through the pool session, or inline when there is none.

    The inline path (``repro resume`` without a running service, unit
    tests) executes the very same task functions in-process, so both
    paths produce identical artifacts and manifests.
    """
    if not tasks:
        return
    if session is None:
        for task in tasks:
            on_done(None, run_task(task))
        return
    session.submit(tasks)
    session.wait(stall_timeout=stall_timeout, on_done=on_done)


def run_job(record: JobRecord, session: LaneSession | None = None,
            stall_timeout: float = 600.0) -> Path:
    """Drive one job through all stages; returns the final graph path.

    Idempotent by construction: call it on a fresh job, a finished job
    (every stage skips), or the remains of a SIGKILLed one (finished
    stages skip, the rest re-run).  Status transitions land in
    ``status.json``; the manifests remain the authoritative record.
    """
    spec = record.spec
    started = time.time()
    record.set_state("running", stage="step1", error=None)
    try:
        input_digest = file_digest(spec.input)

        # -- Step 1: input pieces -> per-piece spill files ------------------------
        step1_manifests: dict[int, StageManifest] = {}
        pending: list[dict] = []
        for piece in range(spec.n_step1_tasks):
            stage = f"step1_t{piece:04d}"
            params = {
                "k": spec.k, "p": spec.p,
                "n_partitions": spec.n_partitions,
                "n_pieces": spec.n_step1_tasks, "piece": piece,
            }
            inputs = {"reads": input_digest}
            manifest, reason = _stage_is_valid(record, stage, params, inputs)
            if manifest is not None:
                step1_manifests[piece] = manifest
                continue
            pending.append({
                "kind": "step1", "input": spec.input, "piece": piece,
                "n_pieces": spec.n_step1_tasks, "k": spec.k, "p": spec.p,
                "n_partitions": spec.n_partitions,
                "spill_dir": str(record.spill_dir),
            })

        def step1_done(_task_id, result) -> None:
            piece = int(result["piece"])
            stage = f"step1_t{piece:04d}"
            params = {
                "k": spec.k, "p": spec.p,
                "n_partitions": spec.n_partitions,
                "n_pieces": spec.n_step1_tasks, "piece": piece,
            }
            outputs = tuple(
                Artifact.of(path, record.job_dir)
                for _, path in sorted(result["spills"].items())
            )
            manifest = fresh_manifest(
                stage, params, {"reads": input_digest}, outputs,
                stats={
                    "n_reads": result["n_reads"],
                    "n_superkmers": result["n_superkmers"],
                    "spills": {
                        str(part): str(Path(path).name)
                        for part, path in result["spills"].items()
                    },
                },
            )
            manifest.save(record.manifest_path(stage))
            step1_manifests[piece] = manifest
            record.write_status(
                stage="step1",
                step1_done=len(step1_manifests),
                step1_total=spec.n_step1_tasks,
            )

        _execute(pending, session, step1_done, stall_timeout)

        # -- merge: spills -> canonical partition files ---------------------------
        record.write_status(stage="merge")
        spill_paths: list[dict[int, Path]] = []
        for piece in sorted(step1_manifests):
            stats = step1_manifests[piece].stats
            spill_paths.append({
                int(part): record.spill_dir / name
                for part, name in stats.get("spills", {}).items()
            })
        merge_inputs = {
            f"spill:{path.name}": file_digest(path)
            for per_piece in spill_paths for path in per_piece.values()
        }
        merge_params = {"k": spec.k, "n_partitions": spec.n_partitions}
        manifest, _ = _stage_is_valid(record, "merge", merge_params,
                                      merge_inputs)
        if manifest is None:
            from ..msp.partitioner import merge_spill_files, spill_groups
            groups = spill_groups(spill_paths, spec.n_partitions)
            merged = merge_spill_files(groups, record.partition_dir, spec.k)
            manifest = fresh_manifest(
                "merge", merge_params, merge_inputs,
                tuple(Artifact.of(p, record.job_dir) for p in merged),
            )
            manifest.save(record.manifest_path("merge"))
        partition_files = [
            record.job_dir / artifact.path for artifact in manifest.outputs
        ]

        # -- Step 2: one subgraph per partition, checkpointed each ---------------
        record.write_status(stage="step2", step2_done=0,
                            step2_total=len(partition_files))
        step2_params = {
            "k": spec.k, "lam": spec.lam, "alpha": spec.alpha,
            "preaggregate": spec.preaggregate,
            "table_layout": spec.table_layout,
            "insert_protocol": spec.insert_protocol,
            "n_shards": spec.n_shards,
        }
        partition_digests = {
            part: file_digest(path)
            for part, path in enumerate(partition_files)
        }
        subgraph_paths: dict[int, Path] = {}
        n_skipped = 0
        pending = []
        for part, path in enumerate(partition_files):
            stage = f"step2_p{part:04d}"
            inputs = {"partition": partition_digests[part]}
            manifest, _ = _stage_is_valid(record, stage, step2_params, inputs)
            if manifest is not None:
                subgraph_paths[part] = record.job_dir / manifest.outputs[0].path
                n_skipped += 1
                continue
            pending.append({
                "kind": "step2", "partition": part,
                "partition_file": str(path),
                "out_path": str(record.subgraph_dir
                                / f"subgraph_{part:04d}.phdbg"),
                "k": spec.k, "lam": spec.lam, "alpha": spec.alpha,
                "preaggregate": spec.preaggregate,
                "table_layout": spec.table_layout,
                "insert_protocol": spec.insert_protocol,
                "n_shards": spec.n_shards,
                "delay": spec.step2_delay,
            })

        def step2_done(_task_id, result) -> None:
            part = int(result["partition"])
            stage = f"step2_p{part:04d}"
            out_path = Path(result["path"])
            manifest = fresh_manifest(
                stage, step2_params,
                {"partition": partition_digests[part]},
                (Artifact.of(out_path, record.job_dir),),
                stats={"n_vertices": result["n_vertices"],
                       "n_kmers": result["n_kmers"]},
            )
            manifest.save(record.manifest_path(stage))
            subgraph_paths[part] = out_path
            record.write_status(
                stage="step2",
                step2_done=len(subgraph_paths) - n_skipped,
                step2_skipped=n_skipped,
                step2_total=len(partition_files),
            )

        _execute(pending, session, step2_done, stall_timeout)

        # -- finalize: subgraph union -> graph.phdbg ------------------------------
        record.write_status(stage="finalize")
        final_inputs = {
            f"subgraph:{subgraph_paths[part].name}":
                file_digest(subgraph_paths[part])
            for part in sorted(subgraph_paths)
        }
        final_params = {"k": spec.k, "n_partitions": spec.n_partitions}
        manifest, _ = _stage_is_valid(record, "finalize", final_params,
                                      final_inputs)
        if manifest is None:
            ordered = [subgraph_paths[p] for p in sorted(subgraph_paths)]
            n_bytes = _merge_and_save(ordered, spec.k, record.graph_path)
            manifest = fresh_manifest(
                "finalize", final_params, final_inputs,
                (Artifact.of(record.graph_path, record.job_dir,
                             digest=True),),
                stats={"bytes": n_bytes},
            )
            manifest.save(record.manifest_path("finalize"))
        record.set_state(
            "done", stage="finalize",
            graph=str(record.graph_path),
            elapsed_seconds=round(time.time() - started, 3),
        )
        return record.graph_path
    except SessionCancelled:
        record.set_state("cancelled", error=None)
        raise
    except Exception as exc:
        record.set_state("failed", error=f"{type(exc).__name__}: {exc}")
        raise JobFailed(f"job {record.job_id} failed: {exc}") from exc


def _merge_and_save(subgraph_files: list[Path], k: int,
                    graph_path: Path) -> int:
    """Union the per-partition subgraphs and publish the final graph."""
    tmp = graph_path.with_name(graph_path.name + ".tmp")
    if k > 31:
        from ..bigk import merge_bigk_disjoint
        from ..bigk.serialize import load_big_graph, save_big_graph
        merged = merge_bigk_disjoint(
            [load_big_graph(p) for p in subgraph_files], k=k
        )
        n_bytes = save_big_graph(tmp, merged)
    else:
        from ..graph.merge import merge_disjoint
        from ..graph.serialize import load_graph, save_graph
        merged = merge_disjoint([load_graph(p) for p in subgraph_files])
        n_bytes = save_graph(tmp, merged)
    atomic_replace(tmp, graph_path)
    return n_bytes
