"""Stage manifests: the durable evidence a pipeline stage finished.

The job service turns the one-shot build into a checkpointed stage
graph.  Each stage (and, in Step 2, each *partition*) records a
manifest when it completes: the parameters it ran with, the content
digests of its inputs, and the artifacts it produced.  A later run —
the resume after a crash — re-validates the manifest instead of
re-doing the work:

* parameters changed            -> stale, re-run;
* any input digest changed      -> stale, re-run (a new reads file or a
  re-merged partition invalidates everything downstream of it);
* any output missing or resized -> stale, re-run.

Manifests are plain JSON written atomically (temp file + ``os.replace``
in the same directory), so a parent killed mid-write can never leave a
truncated manifest that validates.  A manifest that fails to parse is
treated exactly like a missing one: the stage re-runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

MANIFEST_VERSION = 1

#: Read size for streaming digests (1 MiB keeps memory flat on the
#: 92 GB-class inputs the checkpointing exists for).
_CHUNK = 1 << 20


def file_digest(path: str | os.PathLike) -> str:
    """Streaming SHA-256 of a file, as ``sha256:<hex>``."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            block = fh.read(_CHUNK)
            if not block:
                break
            h.update(block)
    return f"sha256:{h.hexdigest()}"


def write_json_atomic(path: str | os.PathLike, obj) -> None:
    """Write JSON so readers see the old file or the new one, never a
    torn mix: temp file in the same directory, fsync, ``os.replace``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(prefix=path.name + ".", suffix=".tmp",
                               dir=path.parent)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(obj, fh, indent=2, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except FileNotFoundError:  # pragma: no cover - replace won
            pass
        raise


def read_json(path: str | os.PathLike):
    """Parse a JSON file; ``None`` when missing or corrupt (both mean
    "no checkpoint here" to the stage runner)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (FileNotFoundError, json.JSONDecodeError, UnicodeDecodeError):
        return None


@dataclass(frozen=True)
class Artifact:
    """One output file a stage produced, with its recorded identity."""

    path: str  # relative to the job directory
    n_bytes: int
    digest: str | None = None

    def to_dict(self) -> dict:
        return {"path": self.path, "bytes": self.n_bytes,
                "digest": self.digest}

    @classmethod
    def from_dict(cls, d: dict) -> "Artifact":
        return cls(path=d["path"], n_bytes=int(d["bytes"]),
                   digest=d.get("digest"))

    @classmethod
    def of(cls, path: str | os.PathLike, base: str | os.PathLike,
           digest: bool = False) -> "Artifact":
        """Describe an existing file, path stored relative to ``base``."""
        p = Path(path)
        rel = os.path.relpath(p, base)
        return cls(path=rel, n_bytes=p.stat().st_size,
                   digest=file_digest(p) if digest else None)


@dataclass(frozen=True)
class StageManifest:
    """Everything needed to decide a finished stage can be skipped."""

    stage: str
    params: dict
    inputs: dict  # name -> content digest
    outputs: tuple[Artifact, ...] = ()
    stats: dict = field(default_factory=dict)
    created: float = 0.0

    def to_dict(self) -> dict:
        return {
            "version": MANIFEST_VERSION,
            "stage": self.stage,
            "params": self.params,
            "inputs": self.inputs,
            "outputs": [a.to_dict() for a in self.outputs],
            "stats": self.stats,
            "created": self.created,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "StageManifest":
        return cls(
            stage=d["stage"],
            params=d["params"],
            inputs=d["inputs"],
            outputs=tuple(Artifact.from_dict(a) for a in d["outputs"]),
            stats=d.get("stats", {}),
            created=float(d.get("created", 0.0)),
        )

    def save(self, path: str | os.PathLike) -> None:
        write_json_atomic(path, self.to_dict())

    @classmethod
    def load(cls, path: str | os.PathLike) -> "StageManifest | None":
        d = read_json(path)
        if not isinstance(d, dict) or d.get("version") != MANIFEST_VERSION:
            return None
        try:
            return cls.from_dict(d)
        except (KeyError, TypeError, ValueError):
            return None

    # -- validation --------------------------------------------------------------

    def validate(self, params: dict, inputs: dict,
                 base: str | os.PathLike) -> tuple[bool, str]:
        """Is this checkpoint still good for (``params``, ``inputs``)?

        Returns ``(ok, reason)``; ``reason`` names the first mismatch so
        job status can say *why* a stage re-ran.  Output files are
        checked for existence and size (digests are recorded for
        provenance; torn writes are already excluded by the atomic
        write discipline, so size is the cheap sufficient check).
        """
        if self.params != params:
            return False, f"params changed (was {self.params}, now {params})"
        if self.inputs != inputs:
            stale = sorted(
                name for name in set(self.inputs) | set(inputs)
                if self.inputs.get(name) != inputs.get(name)
            )
            return False, f"input digests changed: {', '.join(stale)}"
        base = Path(base)
        for artifact in self.outputs:
            p = base / artifact.path
            if not p.is_file():
                return False, f"output missing: {artifact.path}"
            if p.stat().st_size != artifact.n_bytes:
                return False, f"output resized: {artifact.path}"
        return True, "valid"


def fresh_manifest(stage: str, params: dict, inputs: dict,
                   outputs: tuple[Artifact, ...] = (),
                   stats: dict | None = None) -> StageManifest:
    """A manifest stamped with the current wall-clock time."""
    return StageManifest(stage=stage, params=params, inputs=inputs,
                         outputs=outputs, stats=stats or {},
                         created=time.time())
