"""Utilities: text tables, timing, measurement."""

from .tables import format_cell, print_table, render_table
from .timing import Measurement, StageTimer, fit_loglog_slope, measure

__all__ = [
    "Measurement",
    "StageTimer",
    "fit_loglog_slope",
    "format_cell",
    "measure",
    "print_table",
    "render_table",
]
