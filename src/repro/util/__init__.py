"""Utilities: text tables, timing, measurement, byte sizes."""

from .bytesize import bytes2human, human2bytes
from .tables import format_cell, print_table, render_table
from .timing import Measurement, StageTimer, fit_loglog_slope, measure

__all__ = [
    "Measurement",
    "StageTimer",
    "bytes2human",
    "fit_loglog_slope",
    "format_cell",
    "human2bytes",
    "measure",
    "print_table",
    "render_table",
]
