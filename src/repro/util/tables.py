"""Fixed-width text tables for benchmark reports.

The benchmark harness prints each reproduced table/figure as a plain
text table so the output can be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_cell(value: Any) -> str:
    """Render a value compactly (floats get adaptive precision)."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        if abs(value) >= 0.01:
            return f"{value:.3f}"
        return f"{value:.2e}"
    if isinstance(value, int) and abs(value) >= 10000:
        return f"{value:,}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned text table."""
    cells = [[format_cell(v) for v in row] for row in rows]
    for i, row in enumerate(cells):
        if len(row) != len(headers):
            raise ValueError(f"row {i} has {len(row)} cells for {len(headers)} headers")
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in cells)) if cells else len(headers[c])
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> None:
    """Print a rendered table with surrounding blank lines."""
    print()
    print(render_table(headers, rows, title=title))
    print()
