"""Human-readable byte sizes (``"2G"`` <-> ``2147483648``).

Job specs and the future ``--max-memory`` budget accept sizes the way
operators write them (``"512M"``, ``"1.5 GiB"``, ``"92G"``); internally
everything is an integer byte count.  Binary units throughout: ``K``
is 1024, matching how memory budgets are actually provisioned (and
Flye's ``human2bytes`` convention, the exemplar for checkpointed
assembly jobs).
"""

from __future__ import annotations

import re

_UNIT_EXPONENTS = {"": 0, "B": 0, "K": 1, "M": 2, "G": 3, "T": 4, "P": 5}

#: ``<number> <unit>`` where unit is one of K/M/G/T/P with optional
#: ``B``/``iB`` suffix (``K``, ``KB`` and ``KiB`` all mean 1024).
_SIZE_RE = re.compile(
    r"^\s*(?P<num>\d+(?:\.\d+)?)\s*"
    r"(?P<unit>[KMGTP]?)(?:I?B)?\s*$",
    re.IGNORECASE,
)


def human2bytes(size: str | int | float) -> int:
    """Parse a human size string into an integer byte count.

    Accepts plain integers (returned as-is), floats with units
    (``"1.5G"``), and any of ``K/KB/KiB`` style unit spellings,
    case-insensitively.  Raises :class:`ValueError` on anything else,
    including negative values.
    """
    if isinstance(size, bool):  # bool is an int subclass; reject it
        raise ValueError(f"not a byte size: {size!r}")
    if isinstance(size, (int, float)):
        if size < 0:
            raise ValueError(f"byte size must be >= 0, got {size!r}")
        return int(size)
    m = _SIZE_RE.match(str(size))
    if not m:
        raise ValueError(f"unparsable byte size {size!r}")
    value = float(m.group("num")) * 1024 ** _UNIT_EXPONENTS[
        m.group("unit").upper()
    ]
    return int(value)


def bytes2human(n: int | float, precision: int = 1) -> str:
    """Format a byte count for humans (``1536`` -> ``"1.5K"``).

    Integer byte counts below 1K print without a unit; larger values
    pick the biggest unit that keeps the mantissa >= 1.  Round-trips
    through :func:`human2bytes` up to the shown precision.
    """
    n = float(n)
    if n < 0:
        raise ValueError(f"byte size must be >= 0, got {n!r}")
    for unit in ("P", "T", "G", "M", "K"):
        scale = 1024 ** _UNIT_EXPONENTS[unit]
        if n >= scale:
            value = n / scale
            text = f"{value:.{precision}f}".rstrip("0").rstrip(".")
            return f"{text}{unit}"
    return f"{int(n)}"
