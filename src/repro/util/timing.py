"""Wall-clock timing and peak-memory measurement helpers."""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Measurement:
    """One measured run: wall seconds plus Python-level peak bytes."""

    seconds: float = 0.0
    peak_bytes: int = 0


@contextmanager
def measure(track_memory: bool = True):
    """Context manager yielding a :class:`Measurement` filled on exit.

    Peak memory is tracked with :mod:`tracemalloc`, which covers numpy
    array allocations; interpreter baseline memory is excluded, which is
    the comparison that matters between construction strategies.
    """
    result = Measurement()
    was_tracing = tracemalloc.is_tracing()
    if track_memory and not was_tracing:
        tracemalloc.start()
    if track_memory:
        tracemalloc.reset_peak() if tracemalloc.is_tracing() else None
    start = time.perf_counter()
    try:
        yield result
    finally:
        result.seconds = time.perf_counter() - start
        if track_memory and tracemalloc.is_tracing():
            _, peak = tracemalloc.get_traced_memory()
            result.peak_bytes = peak
            if not was_tracing:
                tracemalloc.stop()


@dataclass
class StageTimer:
    """Accumulates named stage durations (for breakdown reports)."""

    stages: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.stages[name] = self.stages.get(name, 0.0) + (
                time.perf_counter() - start
            )

    @property
    def total(self) -> float:
        return sum(self.stages.values())


def fit_loglog_slope(xs, ys) -> tuple[float, float]:
    """Least-squares fit of ``log y = a log x + b`` (the Fig 9 check).

    Returns ``(a, b)``.  The paper fits the thread-scaling curve this
    way and finds a ≈ -1 (linear scaling).
    """
    import numpy as np

    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.size != ys.size or xs.size < 2:
        raise ValueError("need at least two points")
    if (xs <= 0).any() or (ys <= 0).any():
        raise ValueError("log-log fit needs positive values")
    a, b = np.polyfit(np.log(xs), np.log(ys), 1)
    return float(a), float(b)
