"""Replay model-checker counterexamples against the real code.

:func:`repro.checks.model.check_model` refutes each seeded-bug variant
of the abstract protocol models with a concrete interleaving trace.
This module closes the loop: every trace is translated into
:class:`~repro.checks.schedule.InterleavingScheduler` gate rules that
force the *real* implementation — ``ConcurrentHashTable`` under
:func:`repro.core.hashtable.seed_bugs`, ``InputQueue``/``OutputQueue``/
``ProcessWorkQueue`` under
:func:`repro.concurrentsub.workqueue.seed_queue_bugs` — through the
same interleaving, so the abstract violation reproduces as a concrete,
deterministic failure.

The translation is parametric, not scripted: a replay reads the trace
to learn *which* processes overlap at *which* control point (e.g. the
two claimers whose ``claim_read`` steps interleave), then installs
barrier/park rules at the matching instrumentation points (``tas_gap``,
``stats_rmw``, ``numpy_publish``, ``claim_rmw``, ``early_srv``).  A
sequential step-by-step replayer would be wrong here: the ``tas_claim``
window, for instance, requires *both* writers to arrive at the gap
before either stores — a barrier, which only gate rules express.

Entry point: :func:`replay_counterexample`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from .model import Step
from .schedule import InterleavingScheduler, _run_threads


@dataclass
class ReplayResult:
    """Outcome of replaying one counterexample trace on real code."""

    protocol: str
    variant: str
    reproduced: bool
    detail: str
    notes: dict = field(default_factory=dict)

    def summary(self) -> str:
        verdict = "REPRODUCED" if self.reproduced else "not reproduced"
        return f"{self.protocol}[{self.variant}]: {verdict} — {self.detail}"


def _procs(trace: list[Step], action: str) -> list[str]:
    """Processes performing ``action``, in trace order (with duplicates)."""
    return [s.process for s in trace if s.action == action]


def _overlapping(trace: list[Step], open_action: str,
                 close_action: str) -> tuple[str, str] | None:
    """First pair of processes whose open→close windows overlap.

    Returns ``(first, second)`` where ``second`` performed
    ``open_action`` while ``first``'s window (its ``open_action`` with
    no ``close_action`` yet) was still open — the interleaving shape
    every split-RMW counterexample shares.  A window still open at the
    end of the trace counts (the model checker stops at the violating
    state, which may precede the close).
    """
    open_by: str | None = None
    for step in trace:
        if step.action == open_action:
            if open_by is not None and step.process != open_by:
                return (open_by, step.process)
            open_by = step.process
        elif step.action == close_action and step.process == open_by:
            open_by = None
    return None


# -- insert-protocol replays ------------------------------------------------------


def replay_tas_claim(trace: list[Step], timeout: float = 10.0) -> ReplayResult:
    """Two writers both load EMPTY before either stores LOCKED.

    The trace names the writers whose ``tas_load`` steps overlap; the
    replay holds every seeded writer at the ``tas_gap`` point until all
    have arrived (the barrier the abstract interleaving requires), then
    releases them together: each store sees the EMPTY it loaded, both
    "win", and both run the exclusive-window body.  The concrete
    manifestation is double accounting: ``n_occupied`` exceeds the
    number of occupied slots.
    """
    from ..core.hashtable import OCCUPIED, ConcurrentHashTable, HashStats, \
        seed_bugs
    from .instrument import monitor_session

    k = len(set(_procs(trace, "tas_load")))
    if k < 2:
        return ReplayResult("insert", "tas_claim", False,
                            "trace has no overlapping tas_load steps")

    sched = InterleavingScheduler(timeout=timeout)

    def on_tas_gap(s: InterleavingScheduler, point) -> None:
        if s.is_released("gap"):
            return
        if s.bump("at_gap") >= k:
            s.release("gap")
        else:
            s.pause_at("gap")

    sched.on("tas_gap", on_tas_gap)

    table = ConcurrentHashTable(64, k=15)
    locals_ = [HashStats() for _ in range(k)]

    def writer(i: int):
        def run() -> None:
            table.insert_one_threadsafe(0xD0D0, 0, locals_[i])
        return run

    with seed_bugs("tas_claim"), monitor_session(sched):
        _run_threads([writer(i) for i in range(k)], timeout)

    slots_occupied = int((table._state_view() == OCCUPIED).sum())
    reproduced = table.n_occupied != slots_occupied
    return ReplayResult(
        "insert", "tas_claim", reproduced,
        f"n_occupied={table.n_occupied} for {slots_occupied} occupied "
        f"slot(s) after {k} writers shared the claim window",
        notes={"n_occupied": table.n_occupied, "slots": slots_occupied},
    )


def replay_shared_stats(trace: list[Step],
                        timeout: float = 10.0) -> ReplayResult:
    """One thread's stats RMW is overlapped by another's full increment.

    The trace exhibits a ``stats_read``/``stats_write`` window with a
    second process inside it.  The replay parks the first thread at the
    ``stats_rmw`` point (stale ``ops`` already in a register), lets the
    second run its whole shared-path insert, then resumes the first:
    its write-back erases the second's increment and the shared ``ops``
    count under-reports.
    """
    from ..core.hashtable import ConcurrentHashTable, seed_bugs
    from .instrument import monitor_session

    if _overlapping(trace, "stats_read", "stats_write") is None:
        return ReplayResult("insert", "shared_stats", False,
                            "trace has no overlapping stats RMWs")

    sched = InterleavingScheduler(timeout=timeout)

    def on_stats_rmw(s: InterleavingScheduler, point) -> None:
        if s.bump("rmw_started") == 1:
            s.bump("first_mid_rmw")
            s.pause_at("rmw")

    sched.on("stats_rmw", on_stats_rmw)

    table = ConcurrentHashTable(64, k=15)

    def first() -> None:
        table.insert_one_threadsafe(0xAAAA, 0)  # local=None: shared stats

    def second() -> None:
        sched.wait_count("first_mid_rmw", 1)
        table.insert_one_threadsafe(0xBBBB, 0)
        sched.release("rmw")

    with seed_bugs("shared_stats"), monitor_session(sched):
        _run_threads([first, second], timeout)

    reproduced = table.stats.ops != 2
    return ReplayResult(
        "insert", "shared_stats", reproduced,
        f"shared stats recorded ops={table.stats.ops} for 2 inserts",
        notes={"ops": table.stats.ops},
    )


def replay_numpy_publish(trace: list[Step],
                         timeout: float = 10.0) -> ReplayResult:
    """A lookup runs between the atomic publish and the mirror write.

    The trace shows some writer's ``publish_atomic`` with another
    process's ``lookup`` before the matching ``publish_mirror`` (the
    model checker may stop before the mirror write ever happens).  The
    replay parks the writer at the ``numpy_publish`` point — OCCUPIED
    already stored atomically, mirror still EMPTY — while a second
    thread updates the same key through the (atomic) update path and
    then looks it up through the mirror-trusting read path: the
    committed update is invisible.
    """
    from ..core.hashtable import ConcurrentHashTable, HashStats, seed_bugs
    from .instrument import monitor_session

    writers = _procs(trace, "publish_atomic")
    if not writers:
        return ReplayResult("insert", "numpy_publish", False,
                            "trace has no publish_atomic step")
    writer_p = writers[0]
    window = False
    stale_read = False
    for step in trace:
        if step.process == writer_p and step.action == "publish_atomic":
            window = True
        elif step.process == writer_p and step.action == "publish_mirror":
            window = False
        elif window and step.action == "lookup":
            stale_read = True
    # A trace cut at the violating state keeps the window open to the
    # end; the violating lookup is then the final step of the trace.
    if not (stale_read or (window and trace[-1].action == "lookup")):
        return ReplayResult("insert", "numpy_publish", False,
                            "trace has no lookup inside the mirror window")

    sched = InterleavingScheduler(timeout=timeout)

    def on_numpy_publish(s: InterleavingScheduler, point) -> None:
        s.bump("writer_mid_publish")
        s.pause_at("mirror")

    sched.on("numpy_publish", on_numpy_publish)

    table = ConcurrentHashTable(64, k=15)
    locals_ = [HashStats(), HashStats()]
    outcome = {"missed": False}

    def writer() -> None:
        table.insert_one_threadsafe(0xF00D, 0, locals_[0])

    def updater() -> None:
        sched.wait_count("writer_mid_publish", 1)
        # Atomic flag already OCCUPIED: this is the update path, and it
        # completes — the update is committed and must be visible.
        table.insert_one_threadsafe(0xF00D, 0, locals_[1])
        outcome["missed"] = table.lookup(0xF00D) is None
        sched.release("mirror")

    with seed_bugs("numpy_publish"), monitor_session(sched):
        _run_threads([writer, updater], timeout)

    return ReplayResult(
        "insert", "numpy_publish", outcome["missed"],
        "committed update was invisible to a lookup inside the mirror "
        "window" if outcome["missed"] else "lookup saw the update",
        notes=outcome,
    )


def replay_lf_torn_read(trace: list[Step],
                        timeout: float = 10.0) -> ReplayResult:
    """A probe reads the key words inside the claim→publish gap.

    The trace shows a ``torn_read_duplicate`` step: a reader observing
    a claimed-but-unpublished slot trusted the plain key words without
    waiting for the PUB bit.  The replay parks the real claim winner at
    the ``lf_prepub_gap`` point — ``keys_hi`` written, ``keys_lo`` not —
    while a second thread (under the ``lf_torn_read`` seeded bug, which
    removes the PUB wait) probes the same slot, reads the torn key,
    concludes "different key", and claims a second slot for the same
    kmer.  The concrete manifestation is a duplicated vertex:
    ``n_occupied == 2`` for one distinct key.
    """
    from ..bigk.table import TwoWordHashTable
    from ..core.hashtable import HashStats, seed_bugs
    from .instrument import monitor_session

    if not _procs(trace, "torn_read_duplicate"):
        return ReplayResult("cas_publish", "torn_read", False,
                            "trace has no torn read inside the gap")

    sched = InterleavingScheduler(timeout=timeout)

    def on_gap(s: InterleavingScheduler, point) -> None:
        # Park only the first claim winner; the torn reader's own
        # duplicate insert passes through the gap unimpeded.
        if s.bump("gap_entered") == 1:
            s.bump("winner_mid_gap")
            s.pause_at("gap")

    sched.on("lf_prepub_gap", on_gap)

    table = TwoWordHashTable(64, k=33, protocol="lockfree")
    locals_ = [HashStats(), HashStats()]
    kmer = (3 << 62) | 0xD0D0F00D  # both planes nonzero: the tear shows

    def winner() -> None:
        table.insert_one_threadsafe(kmer, 0, locals_[0])

    def reader() -> None:
        sched.wait_count("winner_mid_gap", 1)
        table.insert_one_threadsafe(kmer, 0, locals_[1])
        sched.release("gap")

    with seed_bugs("lf_torn_read"), monitor_session(sched):
        _run_threads([winner, reader], timeout)

    reproduced = table.n_occupied != 1
    return ReplayResult(
        "cas_publish", "torn_read", reproduced,
        f"n_occupied={table.n_occupied} for 1 distinct key after a "
        f"probe read the claim→publish gap",
        notes={"n_occupied": table.n_occupied},
    )


# -- workqueue-protocol replays ---------------------------------------------------


def replay_split_claim(trace: list[Step],
                       timeout: float = 10.0) -> ReplayResult:
    """Two claimers read the same ``cns`` ticket before either advances.

    The trace names claimers whose ``claim_read`` steps overlap; the
    replay holds both real claimer threads at the ``claim_rmw`` point
    until both have read (the barrier), then releases them: both hold
    the same ticket, and the second ``OutputQueue.publish`` of that
    ticket raises the double-publication error — the concrete
    double-consume.
    """
    from ..concurrentsub.workqueue import InputQueue, OutputQueue, \
        seed_queue_bugs
    from .instrument import monitor_session

    if _overlapping(trace, "claim_read", "claim_adv") is None:
        return ReplayResult("workqueue", "split_claim", False,
                            "trace has no overlapping claim reads")

    sched = InterleavingScheduler(timeout=timeout)

    def on_claim_rmw(s: InterleavingScheduler, point) -> None:
        if s.is_released("claim"):
            return
        if s.bump("at_claim") >= 2:
            s.release("claim")
        else:
            s.pause_at("claim")

    sched.on("claim_rmw", on_claim_rmw)

    in_q = InputQueue(2)
    out_q = OutputQueue(2)
    in_q.publish("part-0")
    in_q.publish("part-1")
    tickets: list[int] = []
    dup_errors: list[str] = []
    lock = threading.Lock()

    def claimer() -> None:
        ticket = in_q.try_claim()
        with lock:
            tickets.append(ticket)
        try:
            out_q.publish(ticket, f"done-{ticket}")
        except ValueError as exc:  # the double-consume manifestation
            with lock:
                dup_errors.append(str(exc))

    with seed_queue_bugs("split_claim"), monitor_session(sched):
        _run_threads([claimer, claimer], timeout)

    duplicated = len(tickets) != len(set(tickets))
    reproduced = duplicated and bool(dup_errors)
    return ReplayResult(
        "workqueue", "split_claim", reproduced,
        f"tickets {sorted(tickets)} claimed; "
        + (f"double publish rejected: {dup_errors[0]}" if dup_errors
           else "no duplicate"),
        notes={"tickets": tickets, "dup_errors": dup_errors},
    )


def replay_early_srv(trace: list[Step], timeout: float = 10.0) -> ReplayResult:
    """A claim reserves a slot ``srv`` covers but the store missed.

    The trace shows the producer's ``publish_srv`` with a consumer
    claim/fetch before the matching ``publish_write``.  The replay
    parks the real producer at the ``early_srv`` point — ``srv``
    already advanced, slot still empty — while a consumer claims the
    ticket (released by the advanced ``srv``) and takes the slot: it
    reads the unpublished ``None``.
    """
    from ..concurrentsub.workqueue import InputQueue, seed_queue_bugs
    from .instrument import monitor_session

    srv_steps = _procs(trace, "publish_srv")
    if not srv_steps:
        return ReplayResult("workqueue", "early_srv", False,
                            "trace has no publish_srv step")
    window = False
    claimed_inside = False
    for step in trace:
        if step.action == "publish_srv":
            window = True
        elif step.action == "publish_write":
            window = False
        elif window and step.action in ("claim", "claim_read", "fetch"):
            claimed_inside = True
    if not claimed_inside:
        return ReplayResult("workqueue", "early_srv", False,
                            "no claim inside the srv/store gap")

    sched = InterleavingScheduler(timeout=timeout)

    def on_early_srv(s: InterleavingScheduler, point) -> None:
        s.bump("srv_advanced")
        s.pause_at("slot_store")

    sched.on("early_srv", on_early_srv)

    q = InputQueue(1)
    outcome: dict = {}

    def producer() -> None:
        q.publish("part-0")

    def consumer() -> None:
        sched.wait_count("srv_advanced", 1)
        ticket = q.try_claim()
        # srv already covers the ticket, so take() returns immediately —
        # with the slot contents the producer has not stored yet.
        outcome["item"] = q.take(ticket, timeout=2.0)
        sched.release("slot_store")

    with seed_queue_bugs("early_srv"), monitor_session(sched):
        _run_threads([producer, consumer], timeout)

    reproduced = outcome.get("item") is None
    return ReplayResult(
        "workqueue", "early_srv", reproduced,
        "claim released by srv read an unwritten slot (None)" if reproduced
        else f"slot was already stored: {outcome.get('item')!r}",
        notes=outcome,
    )


def replay_no_close(trace: list[Step], timeout: float = 10.0) -> ReplayResult:
    """The producer exits without ``close()``: drained claimers hang.

    The abstract deadlock (claimers blocked forever on an OPEN, drained
    queue) maps onto :class:`ProcessWorkQueue`'s bounded wait: with the
    queue never closed, a claim on the drained queue times out with the
    "producer gone?" error instead of returning ``[]``.  The contrast
    run closes the queue and the same claim returns ``[]`` cleanly.
    """
    from ..concurrentsub.workqueue import ProcessWorkQueue, QueueClosed

    if not _procs(trace, "finish_without_close"):
        return ReplayResult("workqueue", "no_close", False,
                            "trace has no finish_without_close step")

    q = ProcessWorkQueue(capacity=2, claim_timeout=0.25)
    q.publish("part-0")
    assert q.claim() == ["part-0"]  # drains the only published item
    stranded = False
    try:
        q.claim()  # producer "exited" without close(): nobody will fill
    except QueueClosed as exc:
        stranded = "producer gone" in str(exc)

    # Contrast: the fixed protocol closes, and the claim exits cleanly.
    q2 = ProcessWorkQueue(capacity=2, claim_timeout=5.0)
    q2.publish("part-0")
    q2.claim()
    q2.close()
    clean_exit = q2.claim() == []

    return ReplayResult(
        "workqueue", "no_close", stranded and clean_exit,
        "claimer on the unclosed drained queue timed out stranded; "
        "closed queue drained cleanly" if stranded and clean_exit
        else "claimer was not stranded",
        notes={"stranded": stranded, "clean_exit": clean_exit},
    )


def replay_no_abort(trace: list[Step], timeout: float = 10.0) -> ReplayResult:
    """A death with no ``abort()`` strands the survivors; abort frees them.

    The abstract counterexample ends with a crash (merger or claimer)
    and no containment.  Concretely: a claimer on an open, drained
    :class:`ProcessWorkQueue` whose producer died times out stranded —
    and the contrast run shows ``abort()`` is the remedy the parent
    must apply: after it, pending and future claims return ``[]``
    immediately.
    """
    import time as _time

    from ..concurrentsub.workqueue import ProcessWorkQueue, QueueClosed

    if not (_procs(trace, "merger_fail") or _procs(trace, "crash_mid_claim")):
        return ReplayResult("workqueue", "no_abort", False,
                            "trace has no crash transition")

    # The stranding: producer dead, queue open, no abort.
    q = ProcessWorkQueue(capacity=2, claim_timeout=0.25)
    stranded = False
    try:
        q.claim()
    except QueueClosed as exc:
        stranded = "producer gone" in str(exc)

    # The containment the parent owes: abort() frees claimers at once.
    q2 = ProcessWorkQueue(capacity=2, claim_timeout=5.0)
    q2.publish("part-0")
    q2.abort()
    t0 = _time.monotonic()
    freed = q2.claim() == []
    fast = _time.monotonic() - t0 < 2.0

    return ReplayResult(
        "workqueue", "no_abort", stranded and freed and fast,
        "claimer stranded without abort; abort() freed claims "
        "immediately" if stranded and freed and fast
        else "stranding/containment contrast did not reproduce",
        notes={"stranded": stranded, "freed": freed, "fast": fast},
    )


#: Replay entry per (protocol, variant) of the seeded-bug corpus.
REPLAYS = {
    ("insert", "tas_claim"): replay_tas_claim,
    ("insert", "shared_stats"): replay_shared_stats,
    ("insert", "numpy_publish"): replay_numpy_publish,
    ("workqueue", "split_claim"): replay_split_claim,
    ("workqueue", "early_srv"): replay_early_srv,
    ("workqueue", "no_close"): replay_no_close,
    ("workqueue", "no_abort"): replay_no_abort,
    ("cas_publish", "torn_read"): replay_lf_torn_read,
}


def replay_counterexample(protocol: str, variant: str, trace: list[Step],
                          timeout: float = 10.0) -> ReplayResult:
    """Replay a model counterexample against the real implementation.

    ``trace`` is the violation trace from
    :func:`repro.checks.model.check_model` on the matching buggy model
    variant; the replay derives its schedule from the trace and drives
    the real code through it under the corresponding seeded bug.
    """
    fn = REPLAYS.get((protocol, variant))
    if fn is None:
        raise ValueError(f"no replay for {protocol}[{variant}]")
    return fn(trace, timeout=timeout)
