"""Deterministic interleaving scheduler for adversarial replays.

The lockset detector reports *candidate* races; this module turns them
into reproducible failures.  An :class:`InterleavingScheduler` is an
access monitor whose ``event`` hook fires at the named control points
the instrumentation emits (``pre_cas``, ``cas``, ``load``, ``store``,
``pre_publish``, ``numpy_publish``, ``stats_rmw``) — always *outside*
any instrumented lock, so a rule may block the thread that hit the
point without deadlocking other stripes.  Rules pause threads on gates
and release them when counters reach thresholds, which pins down the
exact interleaving a race needs:

* **Writer paused between LOCKED and OCCUPIED** (``pre_publish``): the
  slot stays LOCKED while readers hammer it, exercising the bounded
  spin + yield backoff and — under the seeded ``numpy_publish`` bug —
  the stale-mirror lookup window.
* **CAS-loser storm** (``pre_cas``): every contender is held at the CAS
  doorstep and released simultaneously, forcing the maximal cluster of
  lost CAS races in one round.
* **Lost update** (``stats_rmw``): under the seeded ``shared_stats``
  bug the non-atomic read-modify-write is split across this point, so
  pausing the first thread there while a second completes makes the
  lost increment deterministic instead of a one-in-a-million GIL
  switch.

Every wait carries a timeout; a scenario that deadlocks raises
:class:`SchedulerTimeout` instead of hanging the test suite.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from ..core.hashtable import ConcurrentHashTable, HashStats
from .lockset import Monitor


class SchedulerTimeout(RuntimeError):
    """A scheduled wait did not complete; the scenario deadlocked."""


@dataclass
class EventPoint:
    """One instrumentation control point, as seen by a rule."""

    name: str
    index: int | None
    value: object
    thread: str


class InterleavingScheduler(Monitor):
    """Pause/release threads at instrumentation control points.

    Register rules with :meth:`on`; each rule runs *in the thread that
    hit the point* and may call :meth:`pause_at` to block it.  Counters
    (:meth:`bump`/:meth:`wait_count`) coordinate across threads.
    """

    def __init__(self, timeout: float = 10.0) -> None:
        self.timeout = timeout
        self._rules: dict[str, list] = {}
        self._gates: dict[str, threading.Event] = {}
        self._counts: dict[str, int] = {}
        self._cond = threading.Condition()
        self.history: list[EventPoint] = []
        self._history_lock = threading.Lock()

    # -- monitor interface ---------------------------------------------------

    def event(self, name: str, index=None, value=None) -> None:
        rules = self._rules.get(name)
        point = EventPoint(name=name, index=index, value=value,
                           thread=threading.current_thread().name)
        with self._history_lock:
            self.history.append(point)
        if not rules:
            return
        for rule in rules:
            rule(self, point)

    # -- rule registration ---------------------------------------------------

    def on(self, event_name: str, rule) -> "InterleavingScheduler":
        """Run ``rule(scheduler, point)`` whenever ``event_name`` fires."""
        self._rules.setdefault(event_name, []).append(rule)
        return self

    # -- coordination primitives --------------------------------------------

    def _gate(self, name: str) -> threading.Event:
        with self._cond:
            gate = self._gates.get(name)
            if gate is None:
                gate = self._gates[name] = threading.Event()
            return gate

    def pause_at(self, gate_name: str) -> None:
        """Block the calling thread until :meth:`release` opens the gate."""
        if not self._gate(gate_name).wait(self.timeout):
            raise SchedulerTimeout(
                f"thread {threading.current_thread().name} timed out at "
                f"gate {gate_name!r} after {self.timeout}s"
            )

    def release(self, gate_name: str) -> None:
        """Open a gate (idempotent; released gates stay open)."""
        self._gate(gate_name).set()

    def is_released(self, gate_name: str) -> bool:
        return self._gate(gate_name).is_set()

    def bump(self, counter: str, delta: int = 1) -> int:
        """Increment a named counter; returns the new value."""
        with self._cond:
            self._counts[counter] = self._counts.get(counter, 0) + delta
            self._cond.notify_all()
            return self._counts[counter]

    def count(self, counter: str) -> int:
        with self._cond:
            return self._counts.get(counter, 0)

    def wait_count(self, counter: str, threshold: int) -> None:
        """Block until ``counter >= threshold`` (timeout-guarded)."""
        with self._cond:
            ok = self._cond.wait_for(
                lambda: self._counts.get(counter, 0) >= threshold,
                timeout=self.timeout,
            )
        if not ok:
            raise SchedulerTimeout(
                f"counter {counter!r} stuck at {self.count(counter)} "
                f"< {threshold} after {self.timeout}s"
            )

    def events(self, name: str) -> list[EventPoint]:
        with self._history_lock:
            return [p for p in self.history if p.name == name]


# -- prebuilt adversarial scenarios ---------------------------------------------


@dataclass
class ScenarioResult:
    """Outcome of one scheduled replay."""

    stats: HashStats
    per_thread: list[HashStats] = field(default_factory=list)
    lookup_missed: bool = False
    notes: dict = field(default_factory=dict)


def _run_threads(targets, timeout: float) -> None:
    errors: list[BaseException] = []

    def guard(fn):
        def run():
            try:
                fn()
            except BaseException as exc:  # propagate to the caller
                errors.append(exc)
        return run

    threads = [threading.Thread(target=guard(fn), name=f"sched-{i}")
               for i, fn in enumerate(targets)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout)
        if t.is_alive():
            raise SchedulerTimeout("scenario thread did not finish; "
                                   "a gate was never released")
    if errors:
        raise errors[0]


def writer_pause_scenario(table: ConcurrentHashTable, key: int = 0xBEEF,
                          n_readers: int = 4, locked_sightings: int = 32,
                          timeout: float = 10.0,
                          scheduler: InterleavingScheduler | None = None,
                          ) -> ScenarioResult:
    """Pause the CAS winner between LOCKED and OCCUPIED under reader fire.

    The writer thread claims the slot and stops at ``pre_publish``;
    ``n_readers`` threads then insert the same key, each spinning on the
    LOCKED flag.  Once the readers have collectively observed LOCKED
    ``locked_sightings`` times the writer is released.  On correct code
    every reader completes (bounded spin + yield, no livelock) and the
    blocked-read count is at least ``locked_sightings``.

    The caller must install the scheduler as the active monitor (see
    :func:`repro.checks.instrument.monitor_session`) — pass the same
    instance via ``scheduler``, or let this function build one.
    """
    from .instrument import monitor_session

    sched = scheduler or InterleavingScheduler(timeout=timeout)

    def on_pre_publish(s: InterleavingScheduler, point: EventPoint) -> None:
        if s.bump("writers_at_publish") == 1:
            s.pause_at("publish")

    def on_load(s: InterleavingScheduler, point: EventPoint) -> None:
        from ..core.hashtable import LOCKED

        if point.value == LOCKED:
            if s.bump("locked_seen") >= locked_sightings:
                s.release("publish")

    sched.on("pre_publish", on_pre_publish)
    sched.on("load", on_load)

    locals_ = [HashStats() for _ in range(n_readers + 1)]

    def writer() -> None:
        table.insert_one_threadsafe(key, 0, locals_[0])

    def reader(i: int):
        def run() -> None:
            sched.wait_count("writers_at_publish", 1)
            table.insert_one_threadsafe(key, 0, locals_[i])
        return run

    def body() -> None:
        _run_threads([writer] + [reader(i + 1) for i in range(n_readers)],
                     timeout)

    if scheduler is None:
        with monitor_session(sched):
            body()
    else:
        body()

    merged = HashStats()
    for s in locals_:
        merged = merged.merged_with(s)
    return ScenarioResult(stats=merged, per_thread=locals_,
                          notes={"locked_seen": sched.count("locked_seen")})


def cas_storm_scenario(table: ConcurrentHashTable, key: int = 0xCAFE,
                       n_threads: int = 8, timeout: float = 10.0,
                       ) -> ScenarioResult:
    """Hold every contender at the CAS doorstep, then release together.

    All ``n_threads`` threads insert the *same* previously-unseen key;
    each reaches ``pre_cas`` on the same EMPTY slot and waits until all
    have arrived.  Released simultaneously, exactly one CAS wins and the
    other ``n_threads - 1`` deterministically lose — the maximal
    single-round CAS-failure cluster the protocol can produce.
    """
    from .instrument import monitor_session

    sched = InterleavingScheduler(timeout=timeout)

    def on_pre_cas(s: InterleavingScheduler, point: EventPoint) -> None:
        if s.is_released("storm"):
            return  # only the first round is synchronized
        if s.bump("at_cas") >= n_threads:
            s.release("storm")
        else:
            s.pause_at("storm")

    sched.on("pre_cas", on_pre_cas)

    locals_ = [HashStats() for _ in range(n_threads)]

    def worker(i: int):
        def run() -> None:
            table.insert_one_threadsafe(key, 0, locals_[i])
        return run

    with monitor_session(sched):
        _run_threads([worker(i) for i in range(n_threads)], timeout)

    merged = HashStats()
    for s in locals_:
        merged = merged.merged_with(s)
    return ScenarioResult(stats=merged, per_thread=locals_)


def stale_lookup_scenario(table: ConcurrentHashTable, key: int = 0xF00D,
                          timeout: float = 10.0) -> ScenarioResult:
    """Reproduce the dual-publication race as a linearizability failure.

    A writer inserts ``key`` and — when the seeded ``numpy_publish`` bug
    is active — pauses *after* the atomic OCCUPIED store but *before*
    the shadowing numpy-mirror write.  A second thread then updates the
    same key through the atomic path and completes; a subsequent
    ``lookup`` that trusts the numpy mirror misses a key whose update
    already returned.  On fixed code (no mirror in the read path) the
    pause point never fires and the lookup always succeeds.

    Returns ``lookup_missed=True`` when the stale read was observed.
    """
    from .instrument import monitor_session

    sched = InterleavingScheduler(timeout=timeout)

    def on_numpy_publish(s: InterleavingScheduler, point: EventPoint) -> None:
        s.bump("at_mirror_write")
        s.bump("writer_progress")  # published atomically, mirror still stale
        s.pause_at("mirror")

    sched.on("numpy_publish", on_numpy_publish)

    locals_ = [HashStats(), HashStats()]
    result = ScenarioResult(stats=HashStats())

    def writer() -> None:
        table.insert_one_threadsafe(key, 0, locals_[0])
        sched.bump("writer_progress")  # completed (the fixed-code path)

    def updater() -> None:
        # Wait until the writer has published through the atomic store:
        # under the seeded bug it is now paused just before the mirror
        # write; on fixed code it has simply finished.
        sched.wait_count("writer_progress", 1)
        table.insert_one_threadsafe(key, 0, locals_[1])
        # The update committed; a linearizable lookup must now find it.
        result.lookup_missed = table.lookup(key) is None
        sched.release("mirror")

    with monitor_session(sched):
        _run_threads([writer, updater], timeout)

    merged = HashStats()
    for s in locals_:
        merged = merged.merged_with(s)
    result.stats = merged
    result.per_thread = locals_
    return result


def lost_update_scenario(table: ConcurrentHashTable, timeout: float = 10.0,
                         ) -> ScenarioResult:
    """Make the shared-stats lost update deterministic.

    Requires the seeded ``shared_stats`` bug: thread A reads the shared
    ``stats.ops`` and pauses at ``stats_rmw``; thread B then runs its
    whole increment; A resumes and stores its stale value, erasing B's
    increment.  On fixed code the pause point never fires, both
    increments go through the stats lock, and no update is lost.

    ``notes["ops_recorded"]`` is the final shared count;
    ``notes["ops_expected"]`` is 2.
    """
    from .instrument import monitor_session

    sched = InterleavingScheduler(timeout=timeout)

    def on_stats_rmw(s: InterleavingScheduler, point: EventPoint) -> None:
        if s.bump("rmw_started") == 1:
            s.bump("first_progress")  # mid-RMW, stale ops value in hand
            s.pause_at("rmw")  # first thread parks mid-RMW

    sched.on("stats_rmw", on_stats_rmw)

    keys = [0xAAAA, 0xBBBB]

    def first() -> None:
        table.insert_one_threadsafe(keys[0], 0)  # local=None: shared stats
        sched.bump("first_progress")  # completed (the fixed-code path)

    def second() -> None:
        sched.wait_count("first_progress", 1)
        table.insert_one_threadsafe(keys[1], 0)
        sched.release("rmw")

    with monitor_session(sched):
        _run_threads([first, second], timeout)

    return ScenarioResult(
        stats=table.stats,
        notes={"ops_recorded": table.stats.ops, "ops_expected": 2},
    )


def stress_threaded(table: ConcurrentHashTable, n_distinct: int = 64,
                    n_ops: int = 4096, n_threads: int = 8,
                    seed: int = 2017) -> list[HashStats]:
    """Duplicate-heavy threaded stress load (no scheduling, real racing)."""
    rng = np.random.default_rng(seed)
    keys = np.unique(
        rng.integers(0, 1 << 30, size=n_distinct, dtype=np.uint64)
    )
    kmers = keys[rng.integers(0, keys.size, size=n_ops)]
    slots = rng.integers(0, 9, size=n_ops).astype(np.int64)
    return table.insert_threaded(kmers, slots, n_threads=n_threads)


def stress_shared_path(table: ConcurrentHashTable, n_distinct: int = 64,
                       n_ops: int = 2048, n_threads: int = 8,
                       seed: int = 2017) -> None:
    """Stress the shared-stats insert path with concurrent lookups.

    Unlike :func:`stress_threaded` (which hands each worker a private
    ``HashStats``), every insert here passes ``local=None`` so the
    workers contend on the *shared* ``table.stats`` — the path the
    ``shared_stats`` seeded bug corrupts.  Half the threads run lookups
    concurrently, which is what records the numpy-mirror reads the
    ``numpy_publish`` seeded bug makes racy.  On fixed code both paths
    are clean under the lockset monitor.
    """
    rng = np.random.default_rng(seed)
    keys = np.unique(
        rng.integers(0, 1 << 30, size=n_distinct, dtype=np.uint64)
    )
    kmers = keys[rng.integers(0, keys.size, size=n_ops)]
    slots = rng.integers(0, 9, size=n_ops).astype(np.int64)
    n_writers = max(1, n_threads // 2)
    bounds = np.linspace(0, n_ops, n_writers + 1).astype(int)
    errors: list[BaseException] = []
    done = threading.Event()

    def write(t: int) -> None:
        try:
            for i in range(bounds[t], bounds[t + 1]):
                table.insert_one_threadsafe(int(kmers[i]), int(slots[i]))
        except BaseException as exc:  # pragma: no cover - diagnostics
            errors.append(exc)

    def read() -> None:
        # At least one full pass even if this thread is only scheduled
        # after the writers finished: the lockset state machine is
        # synchronization-order based, not wall-clock based, so a read
        # that follows the seeded unsynchronized publish still records
        # the race — without this, a starved reader on a loaded
        # single-core box exits having traced nothing.
        try:
            first = True
            while first or not done.is_set():
                first = False
                for key in keys[:8]:
                    table.lookup(int(key))
        except BaseException as exc:  # pragma: no cover - diagnostics
            errors.append(exc)

    writers = [threading.Thread(target=write, args=(t,), name=f"writer-{t}")
               for t in range(n_writers)]
    readers = [threading.Thread(target=read, name=f"reader-{t}")
               for t in range(max(1, n_threads - n_writers))]
    for t in writers + readers:
        t.start()
    for t in writers:
        t.join()
    done.set()
    for t in readers:
        t.join()
    table._sync_mirror()
    if errors:
        raise errors[0]
