"""Repo-specific concurrency lint rules (static layer).

An AST-based checker with five rules tuned to the invariants of the
state-transfer protocol (ParaHash §III-C3).  It is *not* a general
linter: the rules encode this repo's concurrency discipline and are
deliberately heuristic where whole-program analysis would be needed —
intentional lock-free accesses carry an inline pragma.

Rules
-----

R1  No plain read/write of the shared table arrays (``self.state``,
    ``self.keys``, ``self.keys_hi``, ``self.keys_lo``, ``self.counts``)
    inside a function reachable from the threaded path, unless the
    access is inside a ``with <...lock...>:`` block or inside the
    exclusive window of a won ``compare_and_swap`` (the
    ``if atomic.compare_and_swap(...)`` body).

R2  No non-atomic ``+=``/``-=`` (any augmented assignment) on an
    attribute of an object shared across threads: ``self.<attr>`` in a
    threaded-reachable function, or a local variable assigned from
    ``self.stats``, unless inside a ``with <...lock...>:`` block.

R3  No ``.raw()`` calls anywhere: the escape hatch of
    ``AtomicInt64Array`` is only legal in single-threaded
    setup/teardown, which must be annotated.

R4  Every lock is acquired via ``with``; bare ``.acquire()`` /
    ``.release()`` calls are flagged (un-balanced on exceptions).

R5  No signed/unsigned dtype mixing on ``uint64`` key arithmetic: a
    binary operation between a tracked ``uint64`` array and a tracked
    signed-integer array promotes to ``float64`` under NumPy's rules
    and silently corrupts keys.

R6  Shared-memory segment lifecycle: a name bound from a creator call
    (``create_segment``/``create_table_segment``/``share_read_batch``)
    must reach ``unlink()`` on every exit path — via a ``with`` block,
    an enclosing (or immediately following) ``try`` whose ``finally``
    unlinks it, or by escaping through ``return``/``yield`` (ownership
    transfer).  Conversely a name bound from an attacher call
    (``attach_segment``/``attach_read_batch``) must *never* call
    ``unlink()``: the owner unlinks, attachers only close.

R7  No shared-memory handle or numpy view over one may cross a process
    boundary: a creator/attacher-tainted name (or a subscript view of
    one) appearing in the ``args=`` of a ``Process``/``run_workers``
    spawn is a pickle hazard — pass the picklable ``.spec`` instead
    and re-attach in the child.

R8  The protocol counters (``srv``/``cns``/``prd``/``wrt``) and the
    shard-local counters (any ``shard``-named holder) are only
    advanced through their fetch-increment/publish methods: a raw
    ``.value`` store or augmented assignment outside a lock-held
    ``with`` block bypasses the protocol's atomicity.

R9  Every ``allow[...]`` pragma must suppress at least one issue: a
    pragma that no longer fires marks a safety argument that no longer
    exists (the guarded code moved or the rule stopped covering it) and
    would silently swallow a future regression.  R9 itself cannot be
    suppressed — stale pragmas are removed, not annotated.

Threaded reachability: every function in ``repro/concurrentsub``,
``repro/parallel``, ``repro/bigk`` and ``repro/service`` is considered
threaded (those packages *are* the concurrency substrate, or — for the
job service — feed worker processes and cross-thread handles);
elsewhere, reachability starts from the
per-operation protocol entry points (``insert_one_threadsafe``,
``lookup``) and follows ``self.method()`` / local-function calls
within the file.

Suppression: append ``# checks: allow[R1] <reason>`` (one or more
comma-separated rule names) to the offending line.  Pragmas are read
from real comment tokens only, so documentation that merely *mentions*
the pragma syntax does not suppress anything.  The pragma is part of
the discipline — it marks the places where safety is argued, not
locked.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path

#: Table arrays whose unguarded access on the threaded path is racy (R1).
SHARED_ARRAYS = frozenset({"state", "keys", "keys_hi", "keys_lo", "counts"})

#: Attributes of ``self`` that name objects shared across threads (R2
#: taint sources for local aliases).
SHARED_OBJECT_ATTRS = frozenset({"stats"})

#: Entry points of the real-thread protocol; reachability starts here.
THREADED_ROOTS = frozenset({"insert_one_threadsafe", "lookup"})

#: Packages whose every function runs on (or builds) the threaded path,
#: matched against *path components* (so ``bench_parallel_backend.py``
#: is not swept in by substring accident).
THREADED_MODULE_FRAGMENTS = ("concurrentsub", "parallel", "bigk", "service")

#: Calls that create (own) a shared-memory segment (R6/R7).
SEGMENT_CREATORS = frozenset({
    "create_segment", "create_table_segment", "share_read_batch",
})

#: Calls that attach to a segment someone else owns (R6/R7).
SEGMENT_ATTACHERS = frozenset({"attach_segment", "attach_read_batch"})

#: Functions that spawn worker processes; their ``args=`` is a pickle
#: boundary (R7).
SPAWN_CALLS = frozenset({"Process", "run_workers"})

#: Attribute chains that name a protocol counter (R8): the §III-E
#: queue cursors plus any shard-local counter (``shard_occ``,
#: ``self.shards[i]``, ...) of the sharded table layout.
_COUNTERISH = re.compile(r"\b_?(srv|cns|prd|wrt|shards?\w*)\b")

_LOCKISH = re.compile(r"lock|mutex|cond", re.IGNORECASE)
_PRAGMA = re.compile(r"#\s*checks:\s*allow\[([A-Za-z0-9,\s]+)\]")

_UNSIGNED = frozenset({"uint64"})
_SIGNED = frozenset({"int8", "int16", "int32", "int64"})
_DTYPE_FACTORIES = frozenset({
    "zeros", "empty", "ones", "full", "arange", "asarray",
    "ascontiguousarray", "array",
})
_BINOPS = (ast.Add, ast.Sub, ast.Mult, ast.FloorDiv, ast.Mod,
           ast.BitAnd, ast.BitOr, ast.BitXor, ast.LShift, ast.RShift)


@dataclass(frozen=True)
class LintIssue:
    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _pragma_lines(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> rules allowed on that line.

    Pragmas are read from COMMENT tokens, not raw lines: a docstring or
    message string that *mentions* the pragma syntax neither suppresses
    anything nor counts as a stale pragma for R9.
    """
    allowed: dict[int, frozenset[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenizeError, IndentationError, SyntaxError):
        tokens = []
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        m = _PRAGMA.search(tok.string)
        if m:
            rules = frozenset(
                r.strip().upper() for r in m.group(1).split(",") if r.strip()
            )
            allowed[tok.start[0]] = rules
    return allowed


@dataclass
class _FuncInfo:
    node: ast.FunctionDef
    name: str
    cls: str | None  # enclosing class name, if a method
    calls_self: set[str]
    calls_local: set[str]


def _collect_functions(tree: ast.Module) -> list[_FuncInfo]:
    funcs: list[_FuncInfo] = []

    def visit(node: ast.AST, cls: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                visit(child, child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                calls_self: set[str] = set()
                calls_local: set[str] = set()
                for sub in ast.walk(child):
                    if isinstance(sub, ast.Call):
                        f = sub.func
                        if (isinstance(f, ast.Attribute)
                                and isinstance(f.value, ast.Name)
                                and f.value.id == "self"):
                            calls_self.add(f.attr)
                        elif isinstance(f, ast.Name):
                            calls_local.add(f.id)
                funcs.append(_FuncInfo(
                    node=child, name=child.name, cls=cls,
                    calls_self=calls_self, calls_local=calls_local,
                ))
                visit(child, cls)  # nested defs keep the class scope
            else:
                visit(child, cls)

    visit(tree, None)
    return funcs


def _threaded_functions(funcs: list[_FuncInfo], path: str) -> set[int]:
    """ids of function nodes reachable from the threaded roots."""
    parts = Path(path).parts
    if any(fragment in parts for fragment in THREADED_MODULE_FRAGMENTS):
        return {id(f.node) for f in funcs}
    by_method: dict[tuple[str | None, str], _FuncInfo] = {}
    by_name: dict[str, _FuncInfo] = {}
    for f in funcs:
        by_method.setdefault((f.cls, f.name), f)
        if f.cls is None:
            by_name.setdefault(f.name, f)
    work = [f for f in funcs if f.name in THREADED_ROOTS]
    seen: set[int] = set()
    while work:
        f = work.pop()
        if id(f.node) in seen:
            continue
        seen.add(id(f.node))
        for callee in f.calls_self:
            target = by_method.get((f.cls, callee))
            if target is not None and id(target.node) not in seen:
                work.append(target)
        for callee in f.calls_local:
            target = by_name.get(callee)
            if target is not None and id(target.node) not in seen:
                work.append(target)
    return seen


def _is_lockish_context(item: ast.withitem) -> bool:
    """Does this ``with`` item look like a lock acquisition?"""
    text = ast.unparse(item.context_expr)
    return bool(_LOCKISH.search(text))


def _has_cas_call(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if (isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "compare_and_swap"):
            return True
    return False


def _self_attr(node: ast.AST) -> str | None:
    """`self.<attr>` -> attr name, else None."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


class _GuardWalker:
    """Walk one function body tracking lock / CAS-window guard context.

    ``cas_names`` are local names assigned from an expression containing
    a ``compare_and_swap`` call (``won = atomic.compare_and_swap(...)``);
    an ``if <such-name>:`` body is the exclusive window exactly like an
    ``if atomic.compare_and_swap(...):`` body.
    """

    def __init__(self, cas_names: frozenset[str] = frozenset()) -> None:
        self.cas_names = cas_names
        self.hits: list[tuple[ast.AST, bool]] = []  # (node, guarded)

    def walk(self, func: ast.FunctionDef):
        yield from self._walk_body(func.body, guarded=False)

    def _walk_body(self, stmts, guarded: bool):
        for stmt in stmts:
            yield from self._walk_stmt(stmt, guarded)

    def _walk_stmt(self, stmt: ast.stmt, guarded: bool):
        if isinstance(stmt, ast.With):
            inner = guarded or any(
                _is_lockish_context(item) for item in stmt.items
            )
            for item in stmt.items:
                yield item, guarded
            yield from self._walk_body(stmt.body, inner)
        elif isinstance(stmt, ast.If):
            yield stmt.test, guarded
            body_guard = guarded or _has_cas_call(stmt.test) or (
                isinstance(stmt.test, ast.Name)
                and stmt.test.id in self.cas_names
            )
            yield from self._walk_body(stmt.body, body_guard)
            yield from self._walk_body(stmt.orelse, guarded)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            yield stmt.iter, guarded
            yield stmt.target, guarded
            yield from self._walk_body(stmt.body, guarded)
            yield from self._walk_body(stmt.orelse, guarded)
        elif isinstance(stmt, ast.While):
            yield stmt.test, guarded
            yield from self._walk_body(stmt.body, guarded)
            yield from self._walk_body(stmt.orelse, guarded)
        elif isinstance(stmt, ast.Try):
            yield from self._walk_body(stmt.body, guarded)
            for handler in stmt.handlers:
                yield from self._walk_body(handler.body, guarded)
            yield from self._walk_body(stmt.orelse, guarded)
            yield from self._walk_body(stmt.finalbody, guarded)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            return  # nested defs are analyzed as their own functions
        else:
            yield stmt, guarded


def _cas_assigned_names(func: ast.FunctionDef) -> frozenset[str]:
    """Local names assigned (in any branch) from a CAS-bearing expression."""
    names: set[str] = set()
    for sub in ast.walk(func):
        if isinstance(sub, ast.Assign) and len(sub.targets) == 1 \
                and isinstance(sub.targets[0], ast.Name) \
                and _has_cas_call(sub.value):
            names.add(sub.targets[0].id)
    return frozenset(names)


def _iter_accesses(func: ast.FunctionDef,
                   cas_names: frozenset[str] = frozenset()):
    """Yield (expr_node, guarded) pairs for every expression statement
    context in the function, with guard tracking."""
    walker = _GuardWalker(cas_names)
    yield from walker.walk(func)


# -- rules ----------------------------------------------------------------------


def _rule_r1_r2(func: _FuncInfo, path: str, issues: list[LintIssue]) -> None:
    # Taint: local names aliased to shared objects (e.g. the old
    # ``stats = local if local is not None else self.stats``).
    tainted: set[str] = set()
    for sub in ast.walk(func.node):
        if isinstance(sub, ast.Assign) and len(sub.targets) == 1 \
                and isinstance(sub.targets[0], ast.Name):
            for piece in ast.walk(sub.value):
                attr = _self_attr(piece)
                if attr in SHARED_OBJECT_ATTRS:
                    tainted.add(sub.targets[0].id)

    cas_names = _cas_assigned_names(func.node)
    for top, guarded in _iter_accesses(func.node, cas_names):
        for node in ast.walk(top):
            # R1: shared-array touches.
            attr = _self_attr(node)
            if attr in SHARED_ARRAYS and not guarded:
                issues.append(LintIssue(
                    "R1", path, node.lineno, node.col_offset,
                    f"unguarded access to shared array `self.{attr}` on the "
                    f"threaded path (function `{func.name}`); hold a lock, "
                    f"use the AtomicInt64Array, or annotate the write-once "
                    f"window with `# checks: allow[R1] <reason>`",
                ))
            # R2: non-atomic read-modify-write on shared objects.
            if isinstance(node, ast.AugAssign) and not guarded:
                target = node.target
                shared_via: str | None = None
                for piece in ast.walk(target):
                    a = _self_attr(piece)
                    if a is not None:
                        shared_via = f"self.{a}"
                        break
                    if isinstance(piece, ast.Name) and piece.id in tainted:
                        shared_via = f"`{piece.id}` (aliases self.stats)"
                        break
                if shared_via is not None and isinstance(target, ast.Attribute):
                    issues.append(LintIssue(
                        "R2", path, node.lineno, node.col_offset,
                        f"non-atomic augmented assignment on {shared_via} in "
                        f"threaded function `{func.name}`: the read-modify-"
                        f"write loses updates under contention; use "
                        f"per-thread stats merged under a lock",
                    ))


def _rule_r3_r4(tree: ast.Module, path: str, issues: list[LintIssue]) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not isinstance(node.func,
                                                            ast.Attribute):
            continue
        attr = node.func.attr
        if attr == "raw":
            issues.append(LintIssue(
                "R3", path, node.lineno, node.col_offset,
                "`.raw()` bypasses the atomic array; only legal in "
                "single-threaded setup/teardown — annotate with "
                "`# checks: allow[R3] <reason>` if this is one",
            ))
        elif attr in ("acquire", "release"):
            # threading.Lock.release() takes no arguments; a call that
            # passes one is a different API (e.g. the interleaving
            # scheduler's gate release("name")), not a lock.
            if attr == "release" and (node.args or node.keywords):
                continue
            issues.append(LintIssue(
                "R4", path, node.lineno, node.col_offset,
                f"bare `.{attr}()`: locks must be held via `with` so they "
                f"release on exceptions",
            ))


def _dtype_of_call(call: ast.Call) -> str | None:
    """Dtype produced by np.zeros(..., dtype=np.X) / .astype(np.X) etc."""
    def dtype_name(expr: ast.AST) -> str | None:
        if isinstance(expr, ast.Attribute):  # np.uint64
            return expr.attr
        if isinstance(expr, ast.Name):
            return expr.id
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return expr.value
        return None

    f = call.func
    if isinstance(f, ast.Attribute):
        if f.attr == "astype" and call.args:
            return dtype_name(call.args[0])
        if f.attr in _DTYPE_FACTORIES:
            for kw in call.keywords:
                if kw.arg == "dtype":
                    return dtype_name(kw.value)
        if f.attr in _SIGNED | _UNSIGNED | {"uint8", "uint16", "uint32"}:
            # np.uint64(x) constructor
            return f.attr
    return None


def _rule_r5(func: _FuncInfo, path: str, issues: list[LintIssue]) -> None:
    dtypes: dict[str, str] = {}
    for sub in ast.walk(func.node):
        if isinstance(sub, ast.Assign) and len(sub.targets) == 1 \
                and isinstance(sub.targets[0], ast.Name) \
                and isinstance(sub.value, ast.Call):
            d = _dtype_of_call(sub.value)
            if d is not None:
                dtypes[sub.targets[0].id] = d

    def resolve(expr: ast.AST) -> str | None:
        if isinstance(expr, ast.Name):
            return dtypes.get(expr.id)
        if isinstance(expr, ast.Subscript):
            return resolve(expr.value)
        if isinstance(expr, ast.Call):
            return _dtype_of_call(expr)
        return None

    def check(lineno: int, col: int, a: str | None, b: str | None) -> None:
        if a is None or b is None:
            return
        pair = {a, b}
        if pair & _UNSIGNED and pair & _SIGNED:
            issues.append(LintIssue(
                "R5", path, lineno, col,
                f"uint64 key arithmetic mixed with {a if a in _SIGNED else b}:"
                f" NumPy promotes uint64⊕signed to float64, silently "
                f"corrupting keys; cast both sides to uint64 first",
            ))

    for sub in ast.walk(func.node):
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, _BINOPS):
            check(sub.lineno, sub.col_offset,
                  resolve(sub.left), resolve(sub.right))
        elif isinstance(sub, ast.AugAssign) and isinstance(sub.op, _BINOPS):
            check(sub.lineno, sub.col_offset,
                  resolve(sub.target), resolve(sub.value))


def _call_name(call: ast.Call) -> str | None:
    """The called name: ``f(...)`` -> ``f``, ``m.f(...)`` -> ``f``."""
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _assigned_names(target: ast.AST) -> list[str]:
    """Plain names bound by an assignment target (incl. tuple unpack)."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for elt in target.elts:
            out.extend(_assigned_names(elt))
        return out
    return []


def _unlink_names(stmts: list[ast.stmt]) -> set[str]:
    """Names ``n`` with an ``n.unlink()`` call anywhere in ``stmts``."""
    names: set[str] = set()
    for stmt in stmts:
        for sub in ast.walk(stmt):
            if (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "unlink"
                    and isinstance(sub.func.value, ast.Name)):
                names.add(sub.func.value.id)
    return names


def _rule_r6(func: _FuncInfo, path: str, issues: list[LintIssue]) -> None:
    """Segment owners reach ``unlink()`` on all exit paths; attachers never."""
    returned: set[str] = set()
    with_names: set[str] = set()
    attached: set[str] = set()
    for sub in ast.walk(func.node):
        if isinstance(sub, (ast.Return, ast.Yield)) and sub.value is not None:
            for piece in ast.walk(sub.value):
                if isinstance(piece, ast.Name):
                    returned.add(piece.id)
        elif isinstance(sub, (ast.With, ast.AsyncWith)):
            for item in sub.items:
                if isinstance(item.context_expr, ast.Name):
                    with_names.add(item.context_expr.id)
        elif isinstance(sub, ast.Assign) and len(sub.targets) == 1 \
                and isinstance(sub.value, ast.Call) \
                and _call_name(sub.value) in SEGMENT_ATTACHERS:
            attached.update(_assigned_names(sub.targets[0]))

    def walk(stmts: list[ast.stmt], enclosing: set[str]) -> None:
        for idx, stmt in enumerate(stmts):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name) \
                    and isinstance(stmt.value, ast.Call) \
                    and _call_name(stmt.value) in SEGMENT_CREATORS:
                name = stmt.targets[0].id
                protectors = set(enclosing)
                # An immediately following try/finally (possibly nested:
                # try-inside-try for multi-stage teardown) also counts.
                nxt = stmts[idx + 1] if idx + 1 < len(stmts) else None
                while isinstance(nxt, ast.Try):
                    protectors |= _unlink_names(nxt.finalbody)
                    nxt = nxt.body[0] if nxt.body else None
                if not (name in protectors or name in returned
                        or name in with_names):
                    issues.append(LintIssue(
                        "R6", path, stmt.lineno, stmt.col_offset,
                        f"segment `{name}` created by "
                        f"`{_call_name(stmt.value)}` may leak: no `with` "
                        f"block, no `{name}.unlink()` in the finally of an "
                        f"enclosing or immediately following try, and the "
                        f"segment does not escape via return/yield — the "
                        f"owner must unlink on every exit path",
                    ))
            if isinstance(stmt, ast.Try):
                inner = enclosing | _unlink_names(stmt.finalbody)
                walk(stmt.body, inner)
                for handler in stmt.handlers:
                    walk(handler.body, inner)
                walk(stmt.orelse, inner)
                walk(stmt.finalbody, enclosing)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                continue  # nested defs are analyzed as their own functions
            else:
                for field_ in ("body", "orelse"):
                    sub_stmts = getattr(stmt, field_, None)
                    if sub_stmts:
                        walk(sub_stmts, enclosing)

    walk(func.node.body, set())

    if attached:
        for sub in ast.walk(func.node):
            if (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "unlink"
                    and isinstance(sub.func.value, ast.Name)
                    and sub.func.value.id in attached):
                issues.append(LintIssue(
                    "R6", path, sub.lineno, sub.col_offset,
                    f"attacher `{sub.func.value.id}` calls `unlink()`: only "
                    f"the creating owner unlinks a segment; attachers "
                    f"`close()`",
                ))


def _rule_r7(func: _FuncInfo, path: str, issues: list[LintIssue]) -> None:
    """No segment handle or view over one in worker-spawn ``args=``."""
    tainted: set[str] = set()
    for sub in ast.walk(func.node):
        if isinstance(sub, ast.Assign) and len(sub.targets) == 1 \
                and isinstance(sub.value, ast.Call) \
                and _call_name(sub.value) in SEGMENT_CREATORS | \
                SEGMENT_ATTACHERS:
            tainted.update(_assigned_names(sub.targets[0]))
    if not tainted:
        return
    # Views taken off a handle (``codes = seg["codes"]``) are tainted too.
    grew = True
    while grew:
        grew = False
        for sub in ast.walk(func.node):
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1 \
                    and isinstance(sub.targets[0], ast.Name) \
                    and isinstance(sub.value, ast.Subscript) \
                    and isinstance(sub.value.value, ast.Name) \
                    and sub.value.value.id in tainted \
                    and sub.targets[0].id not in tainted:
                tainted.add(sub.targets[0].id)
                grew = True

    def scan(expr: ast.AST) -> None:
        if isinstance(expr, ast.Attribute):
            return  # projections (``seg.spec``) are the sanctioned hand-off
        if isinstance(expr, ast.Name) and expr.id in tainted:
            issues.append(LintIssue(
                "R7", path, expr.lineno, expr.col_offset,
                f"segment handle/view `{expr.id}` crosses the process "
                f"boundary in worker args: SharedMemory handles and numpy "
                f"views over them do not survive pickling — pass the "
                f"`.spec` and attach in the child",
            ))
            return
        for child in ast.iter_child_nodes(expr):
            scan(child)

    for sub in ast.walk(func.node):
        if isinstance(sub, ast.Call) and _call_name(sub) in SPAWN_CALLS:
            for kw in sub.keywords:
                if kw.arg == "args":
                    scan(kw.value)


def _rule_r8(func: _FuncInfo, path: str, issues: list[LintIssue]) -> None:
    """Protocol counters advance only via methods or under a lock."""
    def counter_store(target: ast.AST) -> str | None:
        if not (isinstance(target, ast.Attribute)
                and target.attr in ("value", "_value")):
            return None
        base = ast.unparse(target.value)
        if _COUNTERISH.search(base):
            return f"{base}.{target.attr}"
        return None

    for top, guarded in _iter_accesses(func.node):
        if guarded:
            continue
        for node in ast.walk(top):
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            for target in targets:
                store = counter_store(target)
                if store is not None:
                    issues.append(LintIssue(
                        "R8", path, node.lineno, node.col_offset,
                        f"raw store to protocol counter `{store}` outside a "
                        f"lock: srv/cns/prd/wrt and shard counters advance "
                        f"only through their fetch-increment/publish methods "
                        f"(or under the lock) to keep the claim atomic",
                    ))


# -- driver ---------------------------------------------------------------------


def lint_source(source: str, path: str = "<string>") -> list[LintIssue]:
    """Lint one module's source; returns surviving (un-suppressed) issues."""
    tree = ast.parse(source, filename=path)
    pragmas = _pragma_lines(source)
    issues: list[LintIssue] = []

    funcs = _collect_functions(tree)
    threaded = _threaded_functions(funcs, path)
    for f in funcs:
        if id(f.node) in threaded:
            _rule_r1_r2(f, path, issues)
        _rule_r5(f, path, issues)
        _rule_r6(f, path, issues)
        _rule_r7(f, path, issues)
        _rule_r8(f, path, issues)
    _rule_r3_r4(tree, path, issues)

    kept = []
    used: set[tuple[int, str]] = set()
    for issue in issues:
        allowed = pragmas.get(issue.line, frozenset())
        if issue.rule.upper() in allowed:
            used.add((issue.line, issue.rule.upper()))
            continue
        kept.append(issue)
    # R9: a pragma that suppressed nothing is stale — it documents a
    # safety argument for code that no longer triggers the rule, and
    # would silently swallow the next real finding on that line.  R9
    # itself is deliberately not suppressible.
    for line, rules in pragmas.items():
        for rule in sorted(rules):
            if (line, rule) not in used:
                kept.append(LintIssue(
                    "R9", path, line, 0,
                    f"unused `allow[{rule}]` pragma: no {rule} issue fires "
                    f"on this line — remove the stale pragma (it would "
                    f"mask a future regression)",
                ))
    kept.sort(key=lambda i: (i.path, i.line, i.col, i.rule))
    return kept


def lint_file(path: Path | str) -> list[LintIssue]:
    p = Path(path)
    return lint_source(p.read_text(), str(p))


def lint_paths(paths: list[Path | str]) -> list[LintIssue]:
    """Lint every ``*.py`` under the given files/directories."""
    issues: list[LintIssue] = []
    for path in paths:
        p = Path(path)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                issues.extend(lint_file(f))
        else:
            issues.extend(lint_file(p))
    return issues
