"""Concurrency correctness tooling for the state-transfer protocol.

The ~80% lock-reduction claim of ParaHash §III-C3 rests on every access
to shared slot state obeying the EMPTY→LOCKED→OCCUPIED discipline.
This package verifies that discipline mechanically, in two layers:

* **Static** (:mod:`repro.checks.lint`): an AST-based linter with
  repo-specific rules R1–R5 over ``src/repro`` — unguarded shared-array
  access on the threaded path, non-atomic read-modify-writes on shared
  objects, ``raw()`` escapes, bare ``acquire``/``release``, and
  signed/unsigned numpy dtype mixing on key arithmetic.

* **Dynamic** (:mod:`repro.checks.lockset`,
  :mod:`repro.checks.schedule`): an Eraser-style lockset race detector
  fed by the instrumentation hooks in
  :mod:`repro.concurrentsub.atomics` and the access-recording shim in
  :mod:`repro.core.hashtable`, plus a deterministic interleaving
  scheduler that replays ``insert_one_threadsafe`` under adversarial
  schedules (writer paused between LOCKED and OCCUPIED, CAS-loser
  storms) to turn candidate races into reproducible failures.

Run ``python -m repro.checks lint src/`` and
``python -m repro.checks races`` from the command line, or
``pytest --repro-race-detect`` to run the whole test suite under the
lockset detector.
"""

from .lint import LintIssue, lint_paths, lint_source
from .lockset import LocksetMonitor, Monitor, RaceReport
from .instrument import CompositeMonitor, lockset_session, monitor_session
from .schedule import InterleavingScheduler, SchedulerTimeout

__all__ = [
    "CompositeMonitor",
    "InterleavingScheduler",
    "LintIssue",
    "LocksetMonitor",
    "Monitor",
    "RaceReport",
    "SchedulerTimeout",
    "lint_paths",
    "lint_source",
    "lockset_session",
    "monitor_session",
]
