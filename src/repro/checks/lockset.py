"""Eraser-style lockset race detection (dynamic layer).

The classic lockset algorithm (Savage et al., *Eraser: A Dynamic Data
Race Detector for Multithreaded Programs*, TOCS 1997) checks a simple
discipline: every shared variable is protected by *some* lock that is
held on every access.  For each variable ``v`` it maintains a candidate
set ``C(v)`` of locks that have been held on every access so far; when
``C(v)`` becomes empty on a variable that multiple threads write, no
lock protects ``v`` and a race is reported.

Raw lockset checking would flag the state-transfer protocol's
write-once key publication (the key is written with *no* lock held,
protected only by the LOCKED flag's happens-before), so — exactly as in
Eraser — each variable moves through an initialization state machine
and refinement only starts once a second thread touches the variable:

* ``VIRGIN``: never accessed.
* ``EXCLUSIVE``: accessed by exactly one thread.  No refinement: this
  absorbs both initialization *and* the protocol's exclusive
  LOCKED→OCCUPIED key-write window, which is single-threaded by
  construction (the CAS admits one winner before publication).
* ``SHARED``: read by additional threads, never written after leaving
  EXCLUSIVE.  Refinement happens, reports do not — read-only data after
  write-once publication is safe without locks.  This is precisely why
  OCCUPIED keys can be compared lock-free without tripping the
  detector.
* ``SHARED_MODIFIED``: written by a thread other than the first.
  Refinement happens and an empty candidate set is reported as a
  candidate race.

One repo-specific extension on top of classic Eraser: **publication
ordering**.  Pure lockset checking cannot flag a write-once cell whose
readers are unsynchronized with the writer (the EXCLUSIVE→SHARED path
never reports) — which is exactly the shape of the dual-publication bug
where ``lookup`` read the numpy ``state`` mirror while a writer thread
was still publishing it.  Reads that *are* ordered after the write
(because the reader first observed OCCUPIED through the atomic flag,
which establishes happens-before) are recorded with kind
``"read-acq"``; a plain ``"read"`` that takes a variable out of
EXCLUSIVE right after a write, sharing no lock with that write, is
reported as an *unordered publication read*.

Variables are per-cell: ``("keys", id(table), pos)`` is independent of
``("keys", id(table), pos+1)``.  The monitor receives accesses from two
sources: the instrumented ops of
:class:`repro.concurrentsub.atomics.AtomicInt64Array` (which report the
stripe lock they hold) and the ``_trace`` shim in
:mod:`repro.core.hashtable` for raw numpy touches of
``keys``/``counts``/``state``.

Known (and accepted) limitation, inherited from Eraser: fork-join reuse
— a bulk read of every cell after ``join()`` from the coordinating
thread would empty every candidate set and flood the report with false
positives.  Bulk post-join reads therefore go through
``AtomicInt64Array.snapshot()``/``raw()``, which are deliberately not
recorded; scalar query paths stay recorded and clean.
"""

from __future__ import annotations

import itertools
import sys
import threading
import traceback
from dataclasses import dataclass, field

# Variable states (Eraser Fig. 4).
VIRGIN = "virgin"
EXCLUSIVE = "exclusive"
SHARED = "shared"
SHARED_MODIFIED = "shared-modified"

_uid_counter = itertools.count(1)
_thread_uid = threading.local()


def _monitor_thread_id() -> int:
    """A never-reused id for the calling thread.

    ``threading.get_ident()`` values are recycled the moment a thread
    exits; on a loaded box a reader thread regularly inherits the ident
    of a writer that already finished.  Keyed on the raw ident, the
    monitor would classify that reader's accesses as *same-thread*
    (EXCLUSIVE never breaks) and hand it the dead writer's leftover
    lockset — both silent false negatives.  A monotonically increasing
    id cached in ``threading.local`` cannot be reused.
    """
    try:
        return _thread_uid.value
    except AttributeError:
        uid = next(_uid_counter)
        _thread_uid.value = uid
        return uid

#: Frames from these path fragments are skipped when attributing an
#: access to a source site (they are the plumbing, not the subject).
_INTERNAL_FRAGMENTS = ("repro/checks/", "repro\\checks\\",
                       "concurrentsub/atomics", "concurrentsub\\atomics")


class Monitor:
    """Base access monitor: the protocol the instrumentation hooks call.

    Subclass and override what you need; every method is a no-op here.
    ``record`` may be called while an instrumented lock is held, so
    implementations must never block; ``event`` is always called outside
    instrumented locks, so implementations may pause the calling thread
    (the interleaving scheduler does).
    """

    def lock_acquired(self, lock_id) -> None:
        pass

    def lock_released(self, lock_id) -> None:
        pass

    def record(self, label: str, owner: int, index: int, kind: str) -> None:
        pass

    def event(self, name: str, index: int | None = None, value=None) -> None:
        pass


@dataclass
class Access:
    """One recorded touch of a shared variable."""

    thread: str
    kind: str  # "read" | "read-acq" | "write"
    site: str  # "file.py:123 in function"
    lockset: frozenset


@dataclass
class RaceReport:
    """A candidate race: an access that emptied the candidate lockset."""

    label: str
    owner: int
    index: int
    state: str
    access: Access
    previous: Access | None
    stack: list[str] = field(default_factory=list)
    reason: str = "empty candidate lockset"

    def describe(self) -> str:
        lines = [
            f"candidate race on {self.label}[{self.index}] "
            f"(owner 0x{self.owner:x}, state {self.state}, "
            f"{self.reason})",
            f"  {self.access.kind} by {self.access.thread} at "
            f"{self.access.site} holding "
            f"{_fmt_lockset(self.access.lockset)}",
        ]
        if self.previous is not None:
            lines.append(
                f"  previous {self.previous.kind} by {self.previous.thread} "
                f"at {self.previous.site} holding "
                f"{_fmt_lockset(self.previous.lockset)}"
            )
        if self.stack:
            lines.append("  stack of the racing access:")
            lines.extend("    " + ln for ln in self.stack)
        return "\n".join(lines)


def _fmt_lockset(lockset: frozenset) -> str:
    if not lockset:
        return "no locks"
    names = sorted(
        lid[1] if isinstance(lid, tuple) and len(lid) > 1 else str(lid)
        for lid in lockset
    )
    return "{" + ", ".join(str(n) for n in names) + "}"


class _VarInfo:
    __slots__ = ("state", "owner_thread", "candidate", "last", "reported")

    def __init__(self) -> None:
        self.state = VIRGIN
        self.owner_thread: int | None = None
        self.candidate: frozenset | None = None  # None = all locks (⊤)
        self.last: Access | None = None
        self.reported = False


def _caller_site() -> str:
    """Attribute the access to the nearest non-plumbing stack frame.

    Walks ``f_back`` explicitly: ``traceback.walk_stack(None)`` starts a
    version-dependent number of frames up, which made attribution depend
    on how many shim frames sat between the access and the monitor.
    """
    frame = sys._getframe(1)
    while frame is not None:
        fn = frame.f_code.co_filename
        if (not any(fragment in fn for fragment in _INTERNAL_FRAGMENTS)
                and fn != __file__
                and frame.f_code.co_name not in ("_trace", "_mon_event")):
            return (f"{fn.rsplit('/', 1)[-1]}:{frame.f_lineno} "
                    f"in {frame.f_code.co_name}")
        frame = frame.f_back
    return "<unknown>"


class LocksetMonitor(Monitor):
    """The Eraser lockset-refinement algorithm over recorded accesses.

    Thread-safe; install globally with
    :func:`repro.checks.instrument.lockset_session` (or pass to
    ``atomics.set_monitor`` directly).  Candidate races accumulate and
    are retrieved with :meth:`races`.
    """

    def __init__(self, capture_stacks: bool = True,
                 max_reports: int = 50) -> None:
        self._mu = threading.Lock()
        self._locksets: dict[int, set] = {}
        self._vars: dict[tuple, _VarInfo] = {}
        self._reports: list[RaceReport] = []
        self._capture_stacks = capture_stacks
        self._max_reports = max_reports

    # -- lock tracking -------------------------------------------------------

    def lock_acquired(self, lock_id) -> None:
        tid = _monitor_thread_id()
        with self._mu:
            self._locksets.setdefault(tid, set()).add(lock_id)

    def lock_released(self, lock_id) -> None:
        tid = _monitor_thread_id()
        with self._mu:
            held = self._locksets.get(tid)
            if held is not None:
                held.discard(lock_id)

    def locks_held(self) -> frozenset:
        """The calling thread's current lockset (diagnostics/tests)."""
        tid = _monitor_thread_id()
        with self._mu:
            return frozenset(self._locksets.get(tid, ()))

    # -- the lockset algorithm ----------------------------------------------

    def record(self, label: str, owner: int, index: int, kind: str) -> None:
        tid = _monitor_thread_id()
        tname = threading.current_thread().name
        site = _caller_site()
        with self._mu:
            held = frozenset(self._locksets.get(tid, ()))
            key = (label, owner, index)
            v = self._vars.get(key)
            if v is None:
                v = self._vars[key] = _VarInfo()
            access = Access(thread=tname, kind=kind, site=site, lockset=held)
            reason = self._transition(v, tid, access)
            previous = v.last
            v.last = access
            if (reason is not None and not v.reported
                    and len(self._reports) < self._max_reports):
                v.reported = True
                stack: list[str] = []
                if self._capture_stacks:
                    stack = [
                        ln.rstrip()
                        for ln in traceback.format_stack()
                        if not any(fragment in ln
                                   for fragment in _INTERNAL_FRAGMENTS)
                    ][-8:]
                self._reports.append(RaceReport(
                    label=label, owner=owner, index=index, state=v.state,
                    access=access, previous=previous, stack=stack,
                    reason=reason,
                ))

    def _transition(self, v: _VarInfo, tid: int, access: Access) -> str | None:
        """Apply one access to the Eraser state machine.

        Returns a report reason when the access is a candidate race
        (empties the candidate lockset of a shared-modified variable, or
        is an unordered publication read), else ``None``.
        """
        if v.state == VIRGIN:
            v.state = EXCLUSIVE
            v.owner_thread = tid
            return None
        if v.state == EXCLUSIVE:
            if tid == v.owner_thread:
                return None
            # Second thread: refinement begins with *its* lockset (the
            # initializing thread's locks are excused, per Eraser).
            v.candidate = access.lockset
            if access.kind == "write":
                v.state = SHARED_MODIFIED
                if not v.candidate:
                    return "empty candidate lockset"
                return None
            v.state = SHARED
            # Publication-ordering extension: a plain read pulling the
            # variable out of EXCLUSIVE right after a write, with no lock
            # in common with that write, has no happens-before edge to
            # it.  ``read-acq`` reads (ordered via the atomic OCCUPIED
            # observation) are exempt.
            if (access.kind == "read"
                    and v.last is not None and v.last.kind == "write"
                    and not (access.lockset & v.last.lockset)):
                return "unordered publication read"
            return None
        # SHARED or SHARED_MODIFIED: refine on every access.
        assert v.candidate is not None
        v.candidate = v.candidate & access.lockset
        if v.state == SHARED and access.kind == "write":
            v.state = SHARED_MODIFIED
        if v.state == SHARED_MODIFIED and not v.candidate:
            return "empty candidate lockset"
        return None

    # -- results -------------------------------------------------------------

    def races(self) -> list[RaceReport]:
        with self._mu:
            return list(self._reports)

    def var_state(self, label: str, owner: int, index: int) -> str | None:
        """Current Eraser state of one variable (for tests)."""
        with self._mu:
            v = self._vars.get((label, owner, index))
            return v.state if v is not None else None

    def assert_no_races(self) -> None:
        reports = self.races()
        if reports:
            raise AssertionError(
                f"{len(reports)} candidate race(s) detected:\n\n"
                + "\n\n".join(r.describe() for r in reports)
            )
