"""Abstract model of the §III-C3 state-transfer insert protocol.

``n_writers`` threads insert the *same* key into a one-slot abstract
table — the maximally contended configuration, and the smallest one
that exercises every arm of the protocol: exactly one thread wins the
EMPTY→LOCKED claim, writes the key, publishes OCCUPIED; the rest
either spin on LOCKED (modeled as a disabled guard — progress comes
from the winner) or take the update path once OCCUPIED is visible.
After its insert/update each thread bumps the shared occupancy/stats
counters under their locks and finally performs a lookup of the key it
just committed.

The global state is the tuple::

    (flag, mirror, key_writes, count, n_occupied, stats, missed, threads)

``flag`` is the authoritative (atomic) occupancy flag, ``mirror`` the
numpy shadow the ``numpy_publish`` variant publishes through, and each
thread is a ``(pc, reg)`` pair.  Invariants: at most one thread inside
the exclusive LOCKED window, the key is written exactly once, and no
thread's own committed update is invisible to its later lookup.  The
terminal check requires every counter to equal what ``n_writers``
sequential operations would produce.

Variants (each maps to a seeded bug in the real code):

* ``tas_claim`` — the claim is a load-then-store test-and-set instead
  of a CAS (hashtable seeded bug ``tas_claim``): two loads can both see
  EMPTY before either store, putting two writers in the window.
* ``shared_stats`` — the stats merge is a split read/write on the
  shared object (hashtable seeded bug ``shared_stats``): an update is
  lost when the RMWs interleave.
* ``numpy_publish`` — publication is doubled through a non-atomic
  mirror that lookups trust (hashtable seeded bug ``numpy_publish``):
  a committed update is invisible while the mirror write is pending.

Two-word keys (:class:`repro.bigk.table.TwoWordHashTable`) need no
separate model: ``key_writes`` abstracts *all* key words written inside
the LOCKED window, however many there are.  The occupancy argument —
only the CAS winner is between LOCKED and OCCUPIED, and readers never
touch the key words before OCCUPIED is published — is insensitive to
the number of writes in that window, so the verified invariants (single
writer in the window, key written exactly once, committed updates
visible) carry over verbatim to the split-key ``keys_hi``/``keys_lo``
publish.
"""

from __future__ import annotations

from ..model import Action, ProtocolModel

EMPTY, LOCKED, OCCUPIED = 0, 1, 2

# Per-thread program counters.
TRY, TAS, WRITE, PUB, MIRROR, COUNT, OCC, STATS, STATSW, LOOKUP, DONE = \
    range(11)

INSERT_VARIANTS = ("tas_claim", "shared_stats", "numpy_publish")

#: pcs inside the exclusive LOCKED window (claimed, not yet published).
_WINDOW = (WRITE, PUB)


def _upd(state, i, pc, reg=None, flag=None, mirror=None, writes=None,
         count=None, occ=None, stats=None, missed=None):
    """Successor state with thread ``i`` at ``pc`` and the given globals."""
    f, m, w, c, o, st, mi, threads = state
    t = list(threads)
    t[i] = (pc, t[i][1] if reg is None else reg)
    return (
        f if flag is None else flag,
        m if mirror is None else mirror,
        w if writes is None else writes,
        c if count is None else count,
        o if occ is None else occ,
        st if stats is None else stats,
        mi if missed is None else missed,
        tuple(t),
    )


class InsertProtocol(ProtocolModel):
    """The CAS insert state machine for ``n_writers`` same-key threads."""

    def __init__(self, n_writers: int = 3, variant: str | None = None) -> None:
        if n_writers < 1:
            raise ValueError("n_writers must be >= 1")
        if variant is not None and variant not in INSERT_VARIANTS:
            raise ValueError(f"unknown insert variant {variant!r}")
        self.n = n_writers
        self.variant = variant
        self.name = f"insert[{variant or 'fixed'}] x{n_writers}w"

    def initial(self) -> tuple:
        return (EMPTY, EMPTY, 0, 0, 0, 0, 0,
                tuple((TRY, 0) for _ in range(self.n)))

    def enabled(self, state: tuple) -> list[Action]:
        flag, mirror, writes, count, occ, stats, missed, threads = state
        v = self.variant
        out: list[Action] = []
        for i, (pc, reg) in enumerate(threads):
            p = f"w{i}"
            if pc == TRY:
                if flag == EMPTY:
                    if v == "tas_claim":
                        # The bug: the EMPTY test and the LOCKED store
                        # are two separate steps, not one CAS.
                        out.append(Action(p, "tas_load",
                                          lambda s, i=i: _upd(s, i, TAS)))
                    else:
                        out.append(Action(p, "cas_win",
                                          lambda s, i=i: _upd(
                                              s, i, WRITE, flag=LOCKED)))
                elif flag == OCCUPIED:
                    # Update path: key matches (same key), atomic add.
                    out.append(Action(p, "read_key_update",
                                      lambda s, i=i: _upd(
                                          s, i, STATS, count=s[3] + 1)))
                # flag == LOCKED: spinning — blocked on the guard; the
                # winner's publish is what makes progress.
            elif pc == TAS:
                out.append(Action(p, "tas_store",
                                  lambda s, i=i: _upd(
                                      s, i, WRITE, flag=LOCKED)))
            elif pc == WRITE:
                out.append(Action(p, "write_key",
                                  lambda s, i=i: _upd(
                                      s, i, PUB, writes=s[2] + 1)))
            elif pc == PUB:
                if v == "numpy_publish":
                    out.append(Action(p, "publish_atomic",
                                      lambda s, i=i: _upd(
                                          s, i, MIRROR, flag=OCCUPIED)))
                else:
                    out.append(Action(p, "publish",
                                      lambda s, i=i: _upd(
                                          s, i, COUNT, flag=OCCUPIED,
                                          mirror=OCCUPIED)))
            elif pc == MIRROR:
                out.append(Action(p, "publish_mirror",
                                  lambda s, i=i: _upd(
                                      s, i, COUNT, mirror=OCCUPIED)))
            elif pc == COUNT:
                out.append(Action(p, "add_count",
                                  lambda s, i=i: _upd(
                                      s, i, OCC, count=s[3] + 1)))
            elif pc == OCC:
                out.append(Action(p, "incr_occupied",
                                  lambda s, i=i: _upd(
                                      s, i, STATS, occ=s[4] + 1)))
            elif pc == STATS:
                if v == "shared_stats":
                    # The bug: read the shared counter into a register,
                    # write it back +1 as a separate step.
                    out.append(Action(p, "stats_read",
                                      lambda s, i=i: _upd(
                                          s, i, STATSW, reg=s[5])))
                else:
                    out.append(Action(p, "merge_stats",
                                      lambda s, i=i: _upd(
                                          s, i, LOOKUP, stats=s[5] + 1)))
            elif pc == STATSW:
                out.append(Action(p, "stats_write",
                                  lambda s, i=i, reg=reg: _upd(
                                      s, i, LOOKUP, stats=reg + 1)))
            elif pc == LOOKUP:
                # The thread re-reads the key it just committed; the
                # numpy_publish variant trusts the mirror instead of the
                # atomic flag.
                src = 1 if v == "numpy_publish" else 0
                out.append(Action(p, "lookup",
                                  lambda s, i=i, src=src: _upd(
                                      s, i, DONE,
                                      missed=s[6] or int(
                                          s[src] != OCCUPIED))))
        return out

    def invariant(self, state: tuple) -> str | None:
        flag, mirror, writes, count, occ, stats, missed, threads = state
        in_window = sum(1 for pc, _ in threads if pc in _WINDOW)
        if in_window > 1:
            return ("two writers inside the EMPTY→LOCKED exclusive window "
                    "(the claim is not an atomic CAS)")
        if writes > 1:
            return f"key written {writes} times (write-once publication broken)"
        if missed:
            return ("committed update invisible to a later lookup "
                    "(publication ordering: the read path trusts a mirror "
                    "written after the atomic store)")
        return None

    def is_terminal(self, state: tuple) -> bool:
        return all(pc == DONE for pc, _ in state[7])

    def terminal_check(self, state: tuple) -> str | None:
        flag, mirror, writes, count, occ, stats, missed, threads = state
        if count != self.n:
            return (f"lost counter update: {count} recorded for "
                    f"{self.n} observations")
        if stats != self.n:
            return (f"lost stats update: ops {stats} != {self.n} threads "
                    f"(non-atomic read-modify-write on the shared object)")
        if occ != 1:
            return f"n_occupied is {occ} but exactly 1 slot is occupied"
        if flag != OCCUPIED:
            return "run completed without publishing OCCUPIED"
        return None
