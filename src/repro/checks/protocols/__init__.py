"""Abstract protocol models for :mod:`repro.checks.model`.

Two protocols, each with a fixed (verified) build and a corpus of
deliberately broken variants the checker must refute:

* :class:`~repro.checks.protocols.cas_insert.InsertProtocol` — the
  §III-C3 state-transfer insert (CAS EMPTY→LOCKED, write key, publish
  OCCUPIED) as run by ``ConcurrentHashTable.insert_one_threadsafe``.
* :class:`~repro.checks.protocols.workqueue.WorkQueueProtocol` — the
  §III-E srv/cns publish/claim discipline shared by
  ``concurrentsub.workqueue`` and the process backend's
  ``ProcessWorkQueue``, including crash transitions and the parent
  merger's abort containment.
* :class:`~repro.checks.protocols.cas_publish.CasPublishProtocol` —
  the lock-free CAS-publish insert (no LOCKED state: CAS the tag,
  write the plain key words, store PUB) as run by the ``lockfree``
  protocol of ``TwoWordHashTable``/``ConcurrentHashTable``.
"""

from __future__ import annotations

from .cas_insert import INSERT_VARIANTS, InsertProtocol
from .cas_publish import CAS_PUBLISH_VARIANTS, CasPublishProtocol
from .workqueue import QUEUE_VARIANTS, WorkQueueProtocol

#: Every (protocol, buggy-variant) pair of the seeded-bug corpus.
CORPUS: tuple[tuple[str, str], ...] = tuple(
    [("insert", v) for v in INSERT_VARIANTS]
    + [("workqueue", v) for v in QUEUE_VARIANTS]
    + [("cas_publish", v) for v in CAS_PUBLISH_VARIANTS]
)


def build_model(protocol: str, variant: str | None = None, *,
                writers: int = 3, consumers: int = 2, items: int = 4,
                crash: bool = True):
    """Instantiate a protocol model by name (the CLI/test entry point)."""
    if protocol == "insert":
        return InsertProtocol(n_writers=writers, variant=variant)
    if protocol == "workqueue":
        return WorkQueueProtocol(n_consumers=consumers, n_items=items,
                                 crash=crash, variant=variant)
    if protocol == "cas_publish":
        return CasPublishProtocol(n_writers=writers, variant=variant)
    raise ValueError(f"unknown protocol {protocol!r} "
                     f"(expected 'insert', 'workqueue' or 'cas_publish')")


__all__ = [
    "CAS_PUBLISH_VARIANTS",
    "CORPUS",
    "INSERT_VARIANTS",
    "QUEUE_VARIANTS",
    "CasPublishProtocol",
    "InsertProtocol",
    "WorkQueueProtocol",
    "build_model",
]
