"""Abstract model of the lock-free CAS-publish insert protocol.

The ``lockfree`` insert protocol has no LOCKED intermediate state: a
writer claims a slot by CASing the atomic word directly (one-word
tables CAS the biased key itself, so claim *is* publication; two-word
tables CAS a fingerprint tag with a CLAIM bit, write the two plain key
words, then store the tag with the PUB bit).  The split-word variant is
the one with a protocol obligation on the *read* side: a probe that
lands on a claimed-but-unpublished slot must wait for the PUB bit
before trusting the key words, otherwise it can read a torn
(half-written) key, conclude "different key", and insert a duplicate of
the same key into another slot.

``n_writers`` threads insert the *same* key into a one-slot abstract
table.  The global state is the tuple::

    (tag, words, count, occ, dup, threads)

``tag`` is the atomic word (FREE → CLAIM → PUB, never backwards),
``words`` the number of plain key words written so far (the real table
writes ``keys_hi`` then ``keys_lo``), and each thread is a bare pc.
Exactly one thread wins the FREE→CLAIM CAS; the rest either wait for
PUB (modeled as a disabled guard — progress comes from the winner) or
take the atomic fetch-add update path once PUB is visible.

Invariants: at most one thread between CLAIM and PUB, each key word is
written exactly once, and the key is never duplicated into a second
slot.  The terminal check requires the published tag and the counter to
equal what ``n_writers`` sequential operations would produce.

Variants (each maps to a seeded bug in the real code):

* ``torn_read`` — a probe observing CLAIM reads the key words without
  waiting for PUB (bigk table seeded bug ``lf_torn_read``): landing in
  the claim→publish gap it sees a torn key, mis-judges the slot as
  holding a different key, and duplicates the vertex.

The one-word table needs no separate model: its single CAS makes claim
and publication the same transition, so the claim→publish gap — the
only window this protocol must defend — has zero width there.
"""

from __future__ import annotations

from ..model import Action, ProtocolModel

FREE, CLAIM, PUB = 0, 1, 2

#: Total plain key words the winner writes (keys_hi + keys_lo).
KEY_WORDS = 2

# Per-thread program counters.
TRY, WHI, WLO, PUBLISH, COUNT, DONE = range(6)

CAS_PUBLISH_VARIANTS = ("torn_read",)

#: pcs inside the claim→publish gap (claimed, key words not yet trusted).
_GAP = (WHI, WLO, PUBLISH)


def _upd(state, i, pc, tag=None, words=None, count=None, occ=None,
         dup=None):
    """Successor state with thread ``i`` at ``pc`` and the given globals."""
    t0, w, c, o, d, threads = state
    t = list(threads)
    t[i] = pc
    return (
        t0 if tag is None else tag,
        w if words is None else words,
        c if count is None else count,
        o if occ is None else occ,
        d if dup is None else dup,
        tuple(t),
    )


class CasPublishProtocol(ProtocolModel):
    """The lock-free CAS-publish state machine for same-key threads."""

    def __init__(self, n_writers: int = 3, variant: str | None = None) -> None:
        if n_writers < 1:
            raise ValueError("n_writers must be >= 1")
        if variant is not None and variant not in CAS_PUBLISH_VARIANTS:
            raise ValueError(f"unknown cas_publish variant {variant!r}")
        self.n = n_writers
        self.variant = variant
        self.name = f"cas_publish[{variant or 'fixed'}] x{n_writers}w"

    def initial(self) -> tuple:
        return (FREE, 0, 0, 0, 0, tuple(TRY for _ in range(self.n)))

    def enabled(self, state: tuple) -> list[Action]:
        tag, words, count, occ, dup, threads = state
        v = self.variant
        out: list[Action] = []
        for i, pc in enumerate(threads):
            p = f"w{i}"
            if pc == TRY:
                if tag == FREE:
                    # Claim = one CAS on the atomic word; no LOCKED
                    # state exists, losers re-probe the same word.
                    out.append(Action(p, "cas_claim",
                                      lambda s, i=i: _upd(
                                          s, i, WHI, tag=CLAIM)))
                elif tag == PUB:
                    # Published: the key words are trusted, they match,
                    # the update is a single atomic fetch-add.
                    out.append(Action(p, "read_key_fetch_add",
                                      lambda s, i=i: _upd(
                                          s, i, DONE, count=s[2] + 1)))
                elif v == "torn_read":
                    # The bug: read the key words NOW instead of
                    # waiting for PUB.  Complete words happen to match;
                    # torn words read as a different key and the thread
                    # re-inserts the same vertex into another slot.
                    if words == KEY_WORDS:
                        out.append(Action(p, "torn_read_lucky",
                                          lambda s, i=i: _upd(
                                              s, i, DONE, count=s[2] + 1)))
                    else:
                        out.append(Action(p, "torn_read_duplicate",
                                          lambda s, i=i: _upd(
                                              s, i, DONE, count=s[2] + 1,
                                              occ=s[3] + 1, dup=s[4] + 1)))
                # tag == CLAIM (fixed build): waiting on the PUB bit —
                # blocked on the guard; the winner's publish is what
                # makes progress.
            elif pc == WHI:
                out.append(Action(p, "write_key_hi",
                                  lambda s, i=i: _upd(
                                      s, i, WLO, words=s[1] + 1)))
            elif pc == WLO:
                out.append(Action(p, "write_key_lo",
                                  lambda s, i=i: _upd(
                                      s, i, PUBLISH, words=s[1] + 1)))
            elif pc == PUBLISH:
                out.append(Action(p, "store_pub",
                                  lambda s, i=i: _upd(
                                      s, i, COUNT, tag=PUB, occ=s[3] + 1)))
            elif pc == COUNT:
                out.append(Action(p, "fetch_add_count",
                                  lambda s, i=i: _upd(
                                      s, i, DONE, count=s[2] + 1)))
        return out

    def invariant(self, state: tuple) -> str | None:
        tag, words, count, occ, dup, threads = state
        in_gap = sum(1 for pc in threads if pc in _GAP)
        if in_gap > 1:
            return ("two writers inside the claim→publish gap "
                    "(the claim is not an atomic CAS)")
        if words > KEY_WORDS:
            return (f"key words written {words} times for {KEY_WORDS} words "
                    f"(write-once publication broken)")
        if dup:
            return ("same key inserted into two slots: a probe read the "
                    "key words inside the claim→publish gap (torn read of "
                    "an unpublished key)")
        return None

    def is_terminal(self, state: tuple) -> bool:
        return all(pc == DONE for pc in state[5])

    def terminal_check(self, state: tuple) -> str | None:
        tag, words, count, occ, dup, threads = state
        if count != self.n:
            return (f"lost counter update: {count} recorded for "
                    f"{self.n} observations")
        if occ != 1:
            return f"n_occupied is {occ} but exactly 1 slot is occupied"
        if words != KEY_WORDS:
            return (f"{words} key words written at termination "
                    f"(expected {KEY_WORDS})")
        if tag != PUB:
            return "run completed without storing the PUB bit"
        return None
