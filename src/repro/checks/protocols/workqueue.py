"""Abstract model of the §III-E srv/cns publish/claim protocol.

One producer (the parent merger) publishes ``n_items`` addressable
partitions; ``n_consumers`` claimers fetch-increment ``cns`` to reserve
and consume them — the discipline shared by
:class:`repro.concurrentsub.workqueue.InputQueue` and the process
backend's :class:`~repro.concurrentsub.workqueue.ProcessWorkQueue`.
With ``crash=True`` the model also includes the failure transitions the
crash-containment design must survive: a claimer dying *mid-claim*
(reservation taken, item never fetched) and the merger failing before
it closes the queue, plus the parent's ``abort`` reaction that
run_workers' teardown performs.

The global state is the tuple::

    (srv, cns, written, taken, qstate, budget, dup, missing,
     prod_pc, consumers)

``written``/``taken`` are bitmasks over item ids, ``budget`` bounds the
total crashes explored (1), and each consumer is a ``(pc, ticket)``
pair.  Invariants: no double-consume, no consume of an unpublished
slot, ``cns`` never overtakes ``srv``.  Termination: a clean run
consumes every item; a crashed run must end aborted (the parent
surfaces the death) — and no claimer may ever be stranded waiting on a
queue nobody will fill (that is the deadlock check).

Variants (the seeded-bug corpus):

* ``split_claim`` — the claim is a read-then-increment instead of one
  fetch-increment (workqueue seeded bug ``split_claim``): two claimers
  read the same ``cns`` and consume the same partition.
* ``early_srv`` — the producer advances ``srv`` before storing the slot
  (workqueue seeded bug ``early_srv``): a claim reserves an item that
  is not there yet.
* ``no_close`` — the producer exits without ``close()``: drained
  claimers spin forever (deadlock).
* ``no_abort`` — crashes happen but the parent never ``abort()``\\ s:
  either surviving claimers deadlock on a dead merger, or a dead
  claimer's reservation is silently stranded.
"""

from __future__ import annotations

from ..model import Action, ProtocolModel

OPEN, CLOSED, ABORTED = 0, 1, 2

# Consumer program counters.
C_CLAIM, C_ADV, C_FETCH, C_REC, C_DONE, C_CRASH = range(6)
# Producer program counters.
P_LOOP, P_MID, P_DONE, P_FAILED = range(4)

QUEUE_VARIANTS = ("split_claim", "early_srv", "no_close", "no_abort")


def _upd(state, srv=None, cns=None, written=None, taken=None, qstate=None,
         budget=None, dup=None, missing=None, prod_pc=None, consumer=None):
    """Successor state; ``consumer`` is ``(index, pc, ticket-or-None)``."""
    sv, cn, wr, tk, qs, bu, du, mi, pp, cons = state
    if consumer is not None:
        i, pc, ticket = consumer
        cons = list(cons)
        cons[i] = (pc, cons[i][1] if ticket is None else ticket)
        cons = tuple(cons)
    return (
        sv if srv is None else srv,
        cn if cns is None else cns,
        wr if written is None else written,
        tk if taken is None else taken,
        qs if qstate is None else qstate,
        bu if budget is None else budget,
        du if dup is None else dup,
        mi if missing is None else missing,
        pp if prod_pc is None else prod_pc,
        cons,
    )


def _fetch(state, i, ticket):
    """Consumer ``i`` picks up its reserved item ``ticket``."""
    bit = 1 << ticket
    if not state[2] & bit:  # not written: srv lied
        return _upd(state, missing=1, consumer=(i, C_REC, None))
    if state[3] & bit:  # already consumed by someone else
        return _upd(state, dup=1, consumer=(i, C_REC, None))
    return _upd(state, taken=state[3] | bit, consumer=(i, C_REC, None))


class WorkQueueProtocol(ProtocolModel):
    """The srv/cns protocol with a live producer and crash transitions."""

    def __init__(self, n_consumers: int = 2, n_items: int = 4,
                 crash: bool = True, variant: str | None = None) -> None:
        if n_consumers < 1 or n_items < 1:
            raise ValueError("need n_consumers >= 1 and n_items >= 1")
        if variant is not None and variant not in QUEUE_VARIANTS:
            raise ValueError(f"unknown workqueue variant {variant!r}")
        self.n = n_consumers
        self.m = n_items
        self.variant = variant
        # Crash transitions only matter where containment is modeled:
        # the fixed protocol (to verify it) and no_abort (to refute it).
        self.crash = crash and variant in (None, "no_abort")
        self.name = (f"workqueue[{variant or 'fixed'}] x{n_consumers}c/"
                     f"{n_items}i{'+crash' if self.crash else ''}")

    def initial(self) -> tuple:
        return (0, 0, 0, 0, OPEN, 1 if self.crash else 0, 0, 0, P_LOOP,
                tuple((C_CLAIM, 0) for _ in range(self.n)))

    def enabled(self, state: tuple) -> list[Action]:
        srv, cns, written, taken, qstate, budget, dup, missing, prod_pc, \
            consumers = state
        v = self.variant
        out: list[Action] = []

        # -- producer (the parent merger) --------------------------------
        if prod_pc == P_LOOP and qstate == OPEN:
            if srv < self.m:
                if v == "early_srv":
                    # The bug: srv advances before the slot is stored.
                    out.append(Action("prod", "publish_srv",
                                      lambda s: _upd(s, srv=s[0] + 1,
                                                     prod_pc=P_MID)))
                else:
                    out.append(Action("prod", "publish",
                                      lambda s: _upd(
                                          s, written=s[2] | (1 << s[0]),
                                          srv=s[0] + 1)))
            else:
                if v == "no_close":
                    out.append(Action("prod", "finish_without_close",
                                      lambda s: _upd(s, prod_pc=P_DONE)))
                else:
                    out.append(Action("prod", "close",
                                      lambda s: _upd(s, qstate=CLOSED,
                                                     prod_pc=P_DONE)))
            if budget > 0:
                out.append(Action("prod", "merger_fail",
                                  lambda s: _upd(s, prod_pc=P_FAILED,
                                                 budget=s[5] - 1)))
        elif prod_pc == P_MID:
            out.append(Action("prod", "publish_write",
                              lambda s: _upd(s,
                                             written=s[2] | (1 << (s[0] - 1)),
                                             prod_pc=P_LOOP)))

        # -- the parent's crash containment ------------------------------
        crashed_any = any(pc == C_CRASH for pc, _ in consumers)
        if (v != "no_abort" and qstate != ABORTED
                and (prod_pc == P_FAILED or crashed_any)):
            out.append(Action("parent", "abort",
                              lambda s: _upd(s, qstate=ABORTED,
                                             prod_pc=P_DONE)))

        # -- consumers ----------------------------------------------------
        for i, (pc, ticket) in enumerate(consumers):
            p = f"c{i}"
            if pc == C_CLAIM:
                if qstate == ABORTED:
                    out.append(Action(p, "exit_aborted",
                                      lambda s, i=i: _upd(
                                          s, consumer=(i, C_DONE, None))))
                elif cns < srv:
                    if v == "split_claim":
                        # The bug: the cns read and its increment are
                        # two separate steps, not one fetch-increment.
                        out.append(Action(p, "claim_read",
                                          lambda s, i=i: _upd(
                                              s, consumer=(i, C_ADV, s[1]))))
                    else:
                        out.append(Action(p, "claim",
                                          lambda s, i=i: _upd(
                                              s, cns=s[1] + 1,
                                              consumer=(i, C_FETCH, s[1]))))
                elif qstate == CLOSED:
                    out.append(Action(p, "exit_closed",
                                      lambda s, i=i: _upd(
                                          s, consumer=(i, C_DONE, None))))
                # OPEN and drained: blocked, polling for a publish.
            elif pc == C_ADV:
                out.append(Action(p, "claim_adv",
                                  lambda s, i=i: _upd(
                                      s, cns=s[1] + 1,
                                      consumer=(i, C_FETCH, None))))
            elif pc == C_FETCH:
                out.append(Action(p, "fetch",
                                  lambda s, i=i, t=ticket: _fetch(s, i, t)))
                if budget > 0:
                    # Dies mid-claim: reservation taken, item never
                    # fetched — the stranding the parent must contain.
                    out.append(Action(p, "crash_mid_claim",
                                      lambda s, i=i: _upd(
                                          s, budget=s[5] - 1,
                                          consumer=(i, C_CRASH, None))))
            elif pc == C_REC:
                # Pure pc advance (processing the item locally): guard
                # and effect are both process-local, so the partial-
                # order reduction may expand it alone.
                out.append(Action(p, "record",
                                  lambda s, i=i: _upd(
                                      s, consumer=(i, C_CLAIM, None)),
                                  local=True))
        return out

    def invariant(self, state: tuple) -> str | None:
        srv, cns, written, taken, qstate, budget, dup, missing, prod_pc, \
            consumers = state
        if dup:
            return ("partition id consumed twice (the cns claim is not an "
                    "atomic fetch-increment)")
        if missing:
            return ("claimed partition was never published (srv advanced "
                    "before the slot store: publication ordering broken)")
        if cns > srv:
            return (f"cns ({cns}) overtook srv ({srv}): a claim reserved an "
                    f"unpublished slot")
        return None

    def is_terminal(self, state: tuple) -> bool:
        prod_pc, consumers = state[8], state[9]
        return (prod_pc == P_DONE
                and all(pc in (C_DONE, C_CRASH) for pc, _ in consumers))

    def terminal_check(self, state: tuple) -> str | None:
        srv, cns, written, taken, qstate, budget, dup, missing, prod_pc, \
            consumers = state
        crashed = [i for i, (pc, _) in enumerate(consumers) if pc == C_CRASH]
        if crashed and qstate != ABORTED:
            return (f"claimer c{crashed[0]} died holding a reservation and "
                    f"the queue was never aborted: its partition is "
                    f"silently stranded")
        if not crashed and qstate == CLOSED:
            want = (1 << self.m) - 1
            if srv != self.m:
                return (f"queue closed after publishing {srv}/{self.m} "
                        f"partitions")
            if taken != want:
                lost = [b for b in range(self.m) if not taken & (1 << b)]
                return (f"partitions {lost} were published but never "
                        f"consumed in a clean run")
        return None
