"""Explicit-state model checker for the repo's concurrency protocols.

The dynamic layer (:mod:`repro.checks.lockset`,
:mod:`repro.checks.schedule`) only observes interleavings that happen
to run; this module *enumerates* them.  A protocol is abstracted into a
small state machine — hashable global states, guarded atomic actions —
and :func:`check_model` walks every reachable interleaving with a
bounded depth-first search:

* **State hashing.**  States are plain hashable tuples; a visited set
  prunes re-explored states, so the search cost is the size of the
  reachable state space, not the (exponentially larger) number of
  interleavings.
* **Partial-order reduction.**  An action marked ``local=True`` only
  advances its own process's program counter (no shared variable is
  read or written).  When any local action is enabled, expanding *only
  the first one* is sound: it commutes with every other enabled action,
  so each pruned interleaving reaches the same states in a different
  order.  The models only mark strictly-pc-advancing steps local, which
  also guarantees the reduction cannot hide a cycle.
* **Violations.**  Three kinds, each carrying the interleaving that
  reached it: ``invariant`` (a state predicate failed), ``deadlock`` (a
  non-terminal state with no enabled action — e.g. a claimer stranded
  by a dead producer), and ``terminal`` (a completed run with a wrong
  outcome — lost update, unconsumed partition, bad occupancy count).

A :class:`Violation` renders as an interleaving script
(:func:`render_trace`); :mod:`repro.checks.replay` turns the scripts of
the seeded-bug corpus into :class:`~repro.checks.schedule.InterleavingScheduler`
runs against the real table/queue code.

Protocol models live in :mod:`repro.checks.protocols`; the model
interface is duck-typed (see :class:`ProtocolModel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable


@dataclass(frozen=True)
class Action:
    """One enabled atomic step of one process.

    ``apply`` maps the current global state to the successor state; the
    action must be *atomic* in the modeled protocol (a lock-protected
    region, a single CAS, one counter store).  ``local=True`` asserts
    the step touches no shared variable and strictly advances the
    process — the partial-order reduction's commutation license.
    """

    process: str
    name: str
    apply: Callable[[tuple], tuple] = field(compare=False)
    local: bool = False


@dataclass(frozen=True)
class Step:
    """One entry of a counterexample trace."""

    process: str
    action: str


@dataclass
class Violation:
    """A refuted invariant plus the interleaving that refutes it."""

    kind: str  # "invariant" | "deadlock" | "terminal"
    message: str
    trace: tuple[Step, ...]
    state: tuple


@dataclass
class CheckResult:
    """Outcome of one exhaustive (bounded) exploration."""

    model_name: str
    ok: bool
    violation: Violation | None
    states_explored: int
    transitions: int
    max_depth_seen: int
    truncated: bool

    def summary(self) -> str:
        bound = " (bounds hit; exploration incomplete)" if self.truncated else ""
        if self.ok:
            return (f"{self.model_name}: verified — {self.states_explored} "
                    f"states, {self.transitions} transitions, depth "
                    f"{self.max_depth_seen}{bound}")
        v = self.violation
        assert v is not None
        return (f"{self.model_name}: VIOLATION ({v.kind}) after "
                f"{self.states_explored} states — {v.message}")


class ProtocolModel:
    """Duck-typed interface every protocol model implements.

    * ``name`` — display name (protocol plus variant).
    * ``initial()`` — the initial global state (any hashable value).
    * ``enabled(state)`` — list of :class:`Action` enabled in ``state``.
      A process blocked on a guard (a spinning reader, a claimer waiting
      on ``srv``) simply contributes no action; global deadlock is then
      "no process has an action while the run is not terminal".
    * ``invariant(state)`` — ``None`` when the state is fine, else the
      violation message (checked on every reached state).
    * ``is_terminal(state)`` — the run completed (all processes done).
    * ``terminal_check(state)`` — extra predicate on completed runs
      (counts add up, every partition consumed); ``None`` when fine.
    """

    name = "protocol"

    def initial(self) -> tuple:
        raise NotImplementedError

    def enabled(self, state: tuple) -> list[Action]:
        raise NotImplementedError

    def invariant(self, state: tuple) -> str | None:
        return None

    def is_terminal(self, state: tuple) -> bool:
        return not self.enabled(state)

    def terminal_check(self, state: tuple) -> str | None:
        return None


def _ample(actions: list[Action]) -> list[Action]:
    """The partial-order reduction: one local action stands for all."""
    for action in actions:
        if action.local:
            return [action]
    return actions


def check_model(model: ProtocolModel, max_states: int = 500_000,
                max_depth: int = 5_000) -> CheckResult:
    """Exhaustively explore ``model`` (bounded DFS with state hashing).

    Returns the first violation found, or a verified result once the
    reachable state space is exhausted.  ``truncated`` reports whether
    either bound clipped the exploration (a verified-but-truncated
    result is *not* a proof).
    """
    init = model.initial()
    msg = model.invariant(init)
    if msg is not None:
        return CheckResult(model.name, False,
                           Violation("invariant", msg, (), init), 1, 0, 0,
                           False)
    visited: set = {init}
    stack: list[tuple[tuple, tuple[Step, ...]]] = [(init, ())]
    transitions = 0
    max_depth_seen = 0
    truncated = False

    while stack:
        state, trace = stack.pop()
        max_depth_seen = max(max_depth_seen, len(trace))
        actions = model.enabled(state)
        if not actions:
            if not model.is_terminal(state):
                return CheckResult(
                    model.name, False,
                    Violation("deadlock",
                              "no process can make progress but the run is "
                              "not complete (stranded claimer / lost wakeup)",
                              trace, state),
                    len(visited), transitions, max_depth_seen, truncated)
            msg = model.terminal_check(state)
            if msg is not None:
                return CheckResult(
                    model.name, False,
                    Violation("terminal", msg, trace, state),
                    len(visited), transitions, max_depth_seen, truncated)
            continue
        if len(trace) >= max_depth:
            truncated = True
            continue
        for action in _ample(actions):
            succ = action.apply(state)
            transitions += 1
            if succ in visited:
                continue
            step_trace = trace + (Step(action.process, action.name),)
            msg = model.invariant(succ)
            if msg is not None:
                return CheckResult(
                    model.name, False,
                    Violation("invariant", msg, step_trace, succ),
                    len(visited) + 1, transitions, max_depth_seen, truncated)
            if len(visited) >= max_states:
                truncated = True
                continue
            visited.add(succ)
            stack.append((succ, step_trace))

    return CheckResult(model.name, True, None, len(visited), transitions,
                       max_depth_seen, truncated)


def render_trace(trace: Iterable[Step], title: str = "") -> str:
    """Render a counterexample as a numbered interleaving script.

    The script is what :mod:`repro.checks.replay` consumes: each line is
    "which process performs which protocol step", in global order.
    """
    lines = [f"interleaving{': ' + title if title else ''}"]
    for i, step in enumerate(trace, start=1):
        lines.append(f"  {i:3d}. {step.process}: {step.action}")
    if len(lines) == 1:
        lines.append("  (violated in the initial state)")
    return "\n".join(lines)


def steps_of(trace: Iterable[Step], action: str) -> list[str]:
    """Processes performing ``action``, in trace order (replay helper)."""
    return [s.process for s in trace if s.action == action]
