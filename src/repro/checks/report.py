"""Shared reporting helpers for the ``repro.checks`` CLI.

Both the static layer (``lint``) and the model checker (``model``)
report the same way: itemized findings, a per-category count summary,
and a one-line verdict whose shape the CI greps for.  Keeping the
formatting here means the two commands cannot drift apart.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Iterable, TypeVar

T = TypeVar("T")


def count_by(items: Iterable[T], key: Callable[[T], str]) -> dict[str, int]:
    """Ordered ``category -> count`` over ``items``."""
    return dict(sorted(Counter(key(item) for item in items).items()))


def format_counts(counts: dict[str, int]) -> str:
    """``{"R1": 2, "R6": 1}`` -> ``"R1: 2, R6: 1"``."""
    return ", ".join(f"{k}: {n}" for k, n in counts.items())


def verdict(tool: str, failures: int, noun: str = "issue",
            detail: str = "") -> str:
    """The final line: ``checks <tool>: clean`` or the failure count."""
    if failures == 0:
        return f"checks {tool}: clean"
    suffix = f" ({detail})" if detail else ""
    return f"{failures} {noun}(s){suffix}"


def print_report(items: Iterable[T], fmt: Callable[[T], str],
                 key: Callable[[T], str], tool: str,
                 noun: str = "issue") -> int:
    """Print items, a count summary, and the verdict; return exit code."""
    listed = list(items)
    for item in listed:
        print(fmt(item))
    if listed:
        print(f"\n{verdict(tool, len(listed), noun, format_counts(count_by(listed, key)))}")
        return 1
    print(verdict(tool, 0, noun))
    return 0
