"""Install/compose access monitors over the instrumented primitives.

The instrumentation surface is a single process-global hook
(:func:`repro.concurrentsub.atomics.set_monitor`) consulted by

* every :class:`~repro.concurrentsub.atomics.AtomicInt64Array`
  operation,
* every :class:`~repro.concurrentsub.atomics.TracedLock`
  acquire/release (the hash tables' count/occupied/stats locks), and
* the ``_trace``/``_mon_event`` shim calls in
  :mod:`repro.core.hashtable` and :mod:`repro.bigk.table` covering raw
  numpy touches of ``keys``/``counts``/``state``.

This module provides context managers that install a monitor for a
scoped region and restore the previous one afterwards (sessions nest),
and a :class:`CompositeMonitor` to run a lockset analysis and an
interleaving scheduler simultaneously.
"""

from __future__ import annotations

from contextlib import contextmanager

from ..concurrentsub import atomics
from .lockset import LocksetMonitor, Monitor


class CompositeMonitor(Monitor):
    """Fan every instrumentation callback out to several monitors.

    Used to run the lockset detector and the interleaving scheduler in
    the same session: the scheduler steers threads into the adversarial
    window while the detector watches the accesses that happen there.
    """

    def __init__(self, *monitors: Monitor) -> None:
        self.monitors = tuple(monitors)

    def lock_acquired(self, lock_id) -> None:
        for m in self.monitors:
            m.lock_acquired(lock_id)

    def lock_released(self, lock_id) -> None:
        for m in self.monitors:
            m.lock_released(lock_id)

    def record(self, label, owner, index, kind) -> None:
        for m in self.monitors:
            m.record(label, owner, index, kind)

    def event(self, name, index=None, value=None) -> None:
        for m in self.monitors:
            m.event(name, index, value)


@contextmanager
def monitor_session(monitor: Monitor):
    """Install ``monitor`` globally for the duration of the block.

    The previously installed monitor (usually ``None``) is restored on
    exit, so sessions nest: an inner session shadows an outer one, which
    keeps deliberately-seeded races in detector self-tests from leaking
    into a suite-wide ``--repro-race-detect`` run.
    """
    previous = atomics.set_monitor(monitor)
    try:
        yield monitor
    finally:
        atomics.set_monitor(previous)


@contextmanager
def lockset_session(capture_stacks: bool = True):
    """Run the block under a fresh :class:`LocksetMonitor`.

    >>> with lockset_session() as mon:
    ...     table.insert_threaded(kmers, slots, n_threads=8)
    >>> mon.assert_no_races()
    """
    with monitor_session(LocksetMonitor(capture_stacks=capture_stacks)) as mon:
        yield mon
