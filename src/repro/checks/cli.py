"""Command-line driver: ``python -m repro.checks [lint|races|model] ...``.

* ``lint`` — run the R1–R9 static rules over source paths; exit 1 when
  any issue survives its pragmas.
* ``races`` — run the dynamic lockset detector over a threaded stress
  load and the adversarial scheduler scenarios; exit 1 when a candidate
  race is reported.  ``--seed-bug`` re-introduces a fixed bug to
  demonstrate detection (the exit code then *expects* the race).
* ``model`` — explore the abstract protocol models (CAS insert,
  srv/cns work queue) exhaustively up to a bound; exit 1 on any
  invariant violation, deadlock, or bound truncation.  ``--corpus``
  additionally requires every seeded-bug variant to be *refuted* with a
  counterexample trace that replays against the real implementation.
"""

from __future__ import annotations

import argparse
import sys

from .lint import lint_paths
from .report import print_report

#: Model sizes used when *refuting* seeded-bug variants.  Small on
#: purpose: two contenders over two items is the minimal arena in which
#: every corpus bug manifests, the search finds the counterexample in
#: milliseconds, and the resulting trace maps 1:1 onto the two-thread
#: replay harnesses in :mod:`repro.checks.replay`.
_REFUTE_WRITERS = 2
_REFUTE_CONSUMERS = 2
_REFUTE_ITEMS = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.checks",
        description="concurrency static analysis + lockset race detection "
                    "for the state-transfer protocol",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("lint", help="run the R1-R5 static concurrency rules")
    p.add_argument("paths", nargs="+", help="files or directories to lint")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("races", help="run the dynamic lockset race detector")
    p.add_argument("--threads", type=int, default=8)
    p.add_argument("--ops", type=int, default=4096)
    p.add_argument("--distinct", type=int, default=64,
                   help="distinct keys (lower = heavier contention)")
    p.add_argument("--capacity", type=int, default=1024)
    p.add_argument("--seed", type=int, default=2017)
    p.add_argument("--seed-bug", choices=["shared_stats", "numpy_publish"],
                   help="re-introduce a fixed race to demonstrate detection")
    p.add_argument("--no-scenarios", action="store_true",
                   help="skip the adversarial scheduler scenarios")
    p.set_defaults(func=cmd_races)

    p = sub.add_parser(
        "model",
        help="explicit-state model checking of the protocol models")
    p.add_argument("--protocol",
                   choices=["insert", "workqueue", "cas_publish", "all"],
                   default="all")
    p.add_argument("--writers", type=int, default=3,
                   help="insert model: concurrent writers (CI bound: 3)")
    p.add_argument("--consumers", type=int, default=3,
                   help="workqueue model: concurrent consumers (CI bound: 3)")
    p.add_argument("--items", type=int, default=4,
                   help="workqueue model: published items (CI bound: 4)")
    p.add_argument("--deep", action="store_true",
                   help="nightly bound: 4 writers, 4 consumers, 5 items")
    p.add_argument("--max-states", type=int, default=500_000)
    p.add_argument("--max-depth", type=int, default=5_000)
    p.add_argument("--corpus", action="store_true",
                   help="refute every seeded-bug variant and replay each "
                        "counterexample against the real code")
    p.add_argument("--bug", metavar="VARIANT",
                   help="refute a single seeded-bug variant")
    p.add_argument("--no-replay", action="store_true",
                   help="skip executing counterexamples against the real "
                        "implementation (model-level refutation only)")
    p.add_argument("--show-trace", action="store_true",
                   help="print every counterexample trace, not just "
                        "unexpected ones")
    p.set_defaults(func=cmd_model)

    return parser


def cmd_lint(args: argparse.Namespace) -> int:
    try:
        issues = lint_paths(args.paths)
    except OSError as exc:
        print(f"repro.checks lint: {exc}", file=sys.stderr)
        return 2
    except SyntaxError as exc:
        print(f"repro.checks lint: cannot parse {exc.filename}:{exc.lineno}: "
              f"{exc.msg}", file=sys.stderr)
        return 2
    return print_report(issues, fmt=lambda i: i.format(),
                        key=lambda i: i.rule, tool="lint")


def cmd_races(args: argparse.Namespace) -> int:
    # Imported lazily: the lint path must not pay for numpy/threading.
    from contextlib import nullcontext

    from ..core.hashtable import ConcurrentHashTable, seed_bugs
    from .instrument import lockset_session
    from .schedule import (
        cas_storm_scenario,
        stale_lookup_scenario,
        stress_shared_path,
        stress_threaded,
        writer_pause_scenario,
    )

    seeding = seed_bugs(args.seed_bug) if args.seed_bug else nullcontext()
    with seeding:
        table = ConcurrentHashTable(args.capacity, k=15)
        with lockset_session() as mon:
            stress_threaded(table, n_distinct=args.distinct, n_ops=args.ops,
                            n_threads=args.threads, seed=args.seed)
            shared_table = ConcurrentHashTable(args.capacity, k=15)
            stress_shared_path(shared_table, n_distinct=args.distinct,
                               n_ops=max(256, args.ops // 2),
                               n_threads=args.threads, seed=args.seed)
        races = mon.races()

        scenario_lines: list[str] = []
        if not args.no_scenarios:
            storm_table = ConcurrentHashTable(args.capacity, k=15)
            storm = cas_storm_scenario(storm_table, n_threads=args.threads)
            scenario_lines.append(
                f"cas-storm: {storm.stats.cas_failures} lost CAS "
                f"({args.threads - 1} expected), "
                f"{storm_table.n_occupied} slot occupied"
            )
            pause_table = ConcurrentHashTable(args.capacity, k=15)
            pause = writer_pause_scenario(pause_table)
            scenario_lines.append(
                f"writer-pause: {pause.stats.blocked_reads} blocked reads "
                f"while the writer slept between LOCKED and OCCUPIED; "
                f"all readers completed (no livelock)"
            )
            stale_table = ConcurrentHashTable(args.capacity, k=15)
            stale = stale_lookup_scenario(stale_table)
            scenario_lines.append(
                "stale-lookup: lookup after a committed update "
                + ("MISSED the key (linearizability violation)"
                   if stale.lookup_missed else "found the key")
            )
            if stale.lookup_missed:
                races = races or [None]  # force failure exit below

    print(f"stress: {args.ops} ops over {args.distinct} distinct keys, "
          f"{args.threads} threads"
          + (f" [seeded bug: {args.seed_bug}]" if args.seed_bug else ""))
    for line in scenario_lines:
        print(line)
    if races:
        print(f"\n{len([r for r in races if r is not None])} candidate "
              f"race(s):\n")
        for r in races:
            if r is not None:
                print(r.describe())
                print()
        return 1
    print("races: no candidate races detected")
    return 0


def cmd_model(args: argparse.Namespace) -> int:
    # Lazy imports, same reason as cmd_races: `lint` stays numpy-free.
    from .model import check_model, render_trace
    from .protocols import CORPUS, build_model

    writers, consumers, items = args.writers, args.consumers, args.items
    if args.deep:
        writers = max(writers, 4)
        consumers = max(consumers, 4)
        items = max(items, 5)

    failures: list[str] = []

    # -- refutation mode: seeded-bug corpus --------------------------------
    if args.bug or args.corpus:
        pairs = [(p, v) for p, v in CORPUS
                 if args.corpus or v == args.bug]
        if not pairs:
            known = ", ".join(v for _, v in CORPUS)
            print(f"repro.checks model: unknown seeded bug {args.bug!r} "
                  f"(corpus: {known})", file=sys.stderr)
            return 2
        for protocol, variant in pairs:
            model = build_model(protocol, variant=variant,
                                writers=_REFUTE_WRITERS,
                                consumers=_REFUTE_CONSUMERS,
                                items=_REFUTE_ITEMS)
            res = check_model(model, max_states=args.max_states,
                              max_depth=args.max_depth)
            label = f"{protocol}/{variant}"
            if res.violation is None:
                failures.append(f"{label}: NOT refuted — {res.summary()}")
                continue
            v = res.violation
            print(f"{label}: refuted — {v.kind}: {v.message} "
                  f"[{len(v.trace)}-step trace, {res.states_explored} states]")
            if args.show_trace:
                print(render_trace(v.trace, title=label))
            if not args.no_replay:
                from .replay import replay_counterexample

                rep = replay_counterexample(protocol, variant, v.trace)
                print(f"  replay: {rep.summary()}")
                if not rep.reproduced:
                    failures.append(f"{label}: trace did not replay — "
                                    f"{rep.detail}")
        return print_report(
            failures, fmt=str, key=lambda f: f.split(":", 1)[0],
            tool="model (corpus)", noun="refutation failure")

    # -- verification mode: the fixed protocols ----------------------------
    protocols = (["insert", "workqueue", "cas_publish"]
                 if args.protocol == "all" else [args.protocol])
    for protocol in protocols:
        model = build_model(protocol, writers=writers,
                            consumers=consumers, items=items)
        res = check_model(model, max_states=args.max_states,
                          max_depth=args.max_depth)
        print(res.summary())
        if res.violation is not None:
            print(render_trace(res.violation.trace, title=model.name))
            failures.append(f"{model.name}: {res.violation.kind}")
        elif res.truncated:
            # A truncated run proves nothing; CI must not go green on it.
            failures.append(f"{model.name}: bounds hit before exhaustion "
                            f"(raise --max-states/--max-depth)")
    return print_report(
        failures, fmt=str, key=lambda f: f.split(":", 1)[0],
        tool="model", noun="violation")


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
