"""Command-line driver: ``python -m repro.checks [lint|races] ...``.

* ``lint`` — run the R1–R5 static rules over source paths; exit 1 when
  any issue survives its pragmas.
* ``races`` — run the dynamic lockset detector over a threaded stress
  load and the adversarial scheduler scenarios; exit 1 when a candidate
  race is reported.  ``--seed-bug`` re-introduces a fixed bug to
  demonstrate detection (the exit code then *expects* the race).
"""

from __future__ import annotations

import argparse
import sys

from .lint import lint_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.checks",
        description="concurrency static analysis + lockset race detection "
                    "for the state-transfer protocol",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("lint", help="run the R1-R5 static concurrency rules")
    p.add_argument("paths", nargs="+", help="files or directories to lint")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("races", help="run the dynamic lockset race detector")
    p.add_argument("--threads", type=int, default=8)
    p.add_argument("--ops", type=int, default=4096)
    p.add_argument("--distinct", type=int, default=64,
                   help="distinct keys (lower = heavier contention)")
    p.add_argument("--capacity", type=int, default=1024)
    p.add_argument("--seed", type=int, default=2017)
    p.add_argument("--seed-bug", choices=["shared_stats", "numpy_publish"],
                   help="re-introduce a fixed race to demonstrate detection")
    p.add_argument("--no-scenarios", action="store_true",
                   help="skip the adversarial scheduler scenarios")
    p.set_defaults(func=cmd_races)

    return parser


def cmd_lint(args: argparse.Namespace) -> int:
    try:
        issues = lint_paths(args.paths)
    except OSError as exc:
        print(f"repro.checks lint: {exc}", file=sys.stderr)
        return 2
    except SyntaxError as exc:
        print(f"repro.checks lint: cannot parse {exc.filename}:{exc.lineno}: "
              f"{exc.msg}", file=sys.stderr)
        return 2
    for issue in issues:
        print(issue.format())
    if issues:
        counts: dict[str, int] = {}
        for issue in issues:
            counts[issue.rule] = counts.get(issue.rule, 0) + 1
        summary = ", ".join(f"{r}: {n}" for r, n in sorted(counts.items()))
        print(f"\n{len(issues)} issue(s) ({summary})")
        return 1
    print("checks lint: clean")
    return 0


def cmd_races(args: argparse.Namespace) -> int:
    # Imported lazily: the lint path must not pay for numpy/threading.
    from contextlib import nullcontext

    from ..core.hashtable import ConcurrentHashTable, seed_bugs
    from .instrument import lockset_session
    from .schedule import (
        cas_storm_scenario,
        stale_lookup_scenario,
        stress_shared_path,
        stress_threaded,
        writer_pause_scenario,
    )

    seeding = seed_bugs(args.seed_bug) if args.seed_bug else nullcontext()
    with seeding:
        table = ConcurrentHashTable(args.capacity, k=15)
        with lockset_session() as mon:
            stress_threaded(table, n_distinct=args.distinct, n_ops=args.ops,
                            n_threads=args.threads, seed=args.seed)
            shared_table = ConcurrentHashTable(args.capacity, k=15)
            stress_shared_path(shared_table, n_distinct=args.distinct,
                               n_ops=max(256, args.ops // 2),
                               n_threads=args.threads, seed=args.seed)
        races = mon.races()

        scenario_lines: list[str] = []
        if not args.no_scenarios:
            storm_table = ConcurrentHashTable(args.capacity, k=15)
            storm = cas_storm_scenario(storm_table, n_threads=args.threads)
            scenario_lines.append(
                f"cas-storm: {storm.stats.cas_failures} lost CAS "
                f"({args.threads - 1} expected), "
                f"{storm_table.n_occupied} slot occupied"
            )
            pause_table = ConcurrentHashTable(args.capacity, k=15)
            pause = writer_pause_scenario(pause_table)
            scenario_lines.append(
                f"writer-pause: {pause.stats.blocked_reads} blocked reads "
                f"while the writer slept between LOCKED and OCCUPIED; "
                f"all readers completed (no livelock)"
            )
            stale_table = ConcurrentHashTable(args.capacity, k=15)
            stale = stale_lookup_scenario(stale_table)
            scenario_lines.append(
                "stale-lookup: lookup after a committed update "
                + ("MISSED the key (linearizability violation)"
                   if stale.lookup_missed else "found the key")
            )
            if stale.lookup_missed:
                races = races or [None]  # force failure exit below

    print(f"stress: {args.ops} ops over {args.distinct} distinct keys, "
          f"{args.threads} threads"
          + (f" [seeded bug: {args.seed_bug}]" if args.seed_bug else ""))
    for line in scenario_lines:
        print(line)
    if races:
        print(f"\n{len([r for r in races if r is not None])} candidate "
              f"race(s):\n")
        for r in races:
            if r is not None:
                print(r.describe())
                print()
        return 1
    print("races: no candidate races detected")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
