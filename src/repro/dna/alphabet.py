"""DNA alphabet and 2-bit base codes.

The De Bruijn graph is defined on the alphabet ``Σ = {A, C, G, T}``
(paper §II-A).  Every base is represented internally by a 2-bit code::

    A = 0, C = 1, G = 2, T = 3

The code order is lexicographic, so comparisons of packed code integers
agree with lexicographic string comparison — a property the minimizer
machinery (``repro.dna.minimizer``) relies on.

Unknown or ambiguous bases (``N`` etc.) are mapped to ``A``, following
the convention the paper notes for most assemblers ("All the unknown DNA
bases are transformed to 'As'").
"""

from __future__ import annotations

import numpy as np

#: The DNA alphabet in code order.
BASES = "ACGT"

#: Number of symbols in the alphabet.
ALPHABET_SIZE = 4

#: Bits needed per base (log2 of the alphabet size).
BITS_PER_BASE = 2

#: Code of the complement base: A<->T, C<->G, i.e. ``3 - code``.
COMPLEMENT_CODE = np.array([3, 2, 1, 0], dtype=np.uint8)

# Lookup table mapping ASCII byte -> 2-bit code.  Unknown characters map
# to code 0 (base 'A').  Lower-case bases are accepted.
_ASCII_TO_CODE = np.zeros(256, dtype=np.uint8)
for _i, _b in enumerate(BASES):
    _ASCII_TO_CODE[ord(_b)] = _i
    _ASCII_TO_CODE[ord(_b.lower())] = _i

# Lookup table mapping 2-bit code -> ASCII byte.
_CODE_TO_ASCII = np.frombuffer(BASES.encode("ascii"), dtype=np.uint8).copy()


def encode(seq: str | bytes) -> np.ndarray:
    """Encode a DNA string into an array of 2-bit codes.

    Parameters
    ----------
    seq:
        DNA sequence as ``str`` or ASCII ``bytes``.  Characters outside
        ``ACGTacgt`` are treated as unknown bases and encoded as ``A``.

    Returns
    -------
    numpy.ndarray
        ``uint8`` array of codes in ``{0, 1, 2, 3}``, one per base.
    """
    if isinstance(seq, str):
        seq = seq.encode("ascii", errors="replace")
    raw = np.frombuffer(seq, dtype=np.uint8)
    return _ASCII_TO_CODE[raw]


def decode(codes: np.ndarray) -> str:
    """Decode an array of 2-bit codes back into a DNA string."""
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size and codes.max() >= ALPHABET_SIZE:
        raise ValueError("base codes must be in {0, 1, 2, 3}")
    return _CODE_TO_ASCII[codes].tobytes().decode("ascii")


def complement(codes: np.ndarray) -> np.ndarray:
    """Complement each base code (``A<->T``, ``C<->G``)."""
    return COMPLEMENT_CODE[np.asarray(codes, dtype=np.uint8)]


def reverse_complement(codes: np.ndarray) -> np.ndarray:
    """Reverse-complement an array of base codes."""
    return complement(codes)[::-1]


def is_valid_codes(codes: np.ndarray) -> bool:
    """Return ``True`` if every element is a valid 2-bit base code."""
    codes = np.asarray(codes)
    if codes.size == 0:
        return True
    return bool((codes >= 0).all() and (codes < ALPHABET_SIZE).all())


def base_to_code(base: str) -> int:
    """Return the 2-bit code for a single base character."""
    if len(base) != 1:
        raise ValueError("expected a single character")
    return int(_ASCII_TO_CODE[ord(base)])


def code_to_base(code: int) -> str:
    """Return the base character for a single 2-bit code."""
    if not 0 <= code < ALPHABET_SIZE:
        raise ValueError("base codes must be in {0, 1, 2, 3}")
    return BASES[code]
