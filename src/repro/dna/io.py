"""FASTA / FASTQ input and output.

The assembler input files are plain text (paper §II-A); ParaHash accepts
both fastq and fasta (§III-A).  These parsers are deliberately strict
about record structure but permissive about sequence characters
(unknown bases become ``A``, as the paper notes is conventional).
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass
from pathlib import Path

from .reads import ReadBatch


@dataclass(frozen=True)
class SequenceRecord:
    """One named sequence from a FASTA/FASTQ file."""

    name: str
    sequence: str
    quality: str | None = None


class FormatError(ValueError):
    """Raised when an input file violates the FASTA/FASTQ structure."""


def _open_text(path: str | os.PathLike) -> io.TextIOBase:
    return open(path, "rt", encoding="ascii", errors="replace")


def read_fasta(path: str | os.PathLike) -> list[SequenceRecord]:
    """Parse a FASTA file into records.

    Multi-line sequences are concatenated.  Raises :class:`FormatError`
    on sequence data before the first header.
    """
    records: list[SequenceRecord] = []
    name: str | None = None
    chunks: list[str] = []
    with _open_text(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            if line.startswith(">"):
                if name is not None:
                    records.append(SequenceRecord(name=name, sequence="".join(chunks)))
                name = line[1:].strip()
                chunks = []
            else:
                if name is None:
                    raise FormatError(f"{path}:{lineno}: sequence data before first '>' header")
                chunks.append(line)
    if name is not None:
        records.append(SequenceRecord(name=name, sequence="".join(chunks)))
    return records


def read_fastq(path: str | os.PathLike) -> list[SequenceRecord]:
    """Parse a FASTQ file (4 lines per record) into records."""
    records: list[SequenceRecord] = []
    with _open_text(path) as fh:
        lines = [ln.rstrip("\n") for ln in fh]
    lines = [ln for ln in lines if ln]
    if len(lines) % 4 != 0:
        raise FormatError(f"{path}: FASTQ line count {len(lines)} is not a multiple of 4")
    for i in range(0, len(lines), 4):
        header, seq, plus, qual = lines[i : i + 4]
        if not header.startswith("@"):
            raise FormatError(f"{path}: record {i // 4}: header must start with '@'")
        if not plus.startswith("+"):
            raise FormatError(f"{path}: record {i // 4}: separator must start with '+'")
        if len(qual) != len(seq):
            raise FormatError(
                f"{path}: record {i // 4}: quality length {len(qual)} != sequence length {len(seq)}"
            )
        records.append(SequenceRecord(name=header[1:], sequence=seq, quality=qual))
    return records


def read_sequences(path: str | os.PathLike) -> list[SequenceRecord]:
    """Parse FASTA or FASTQ, deciding by the first non-empty character."""
    with _open_text(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            first = line[0]
            break
        else:
            return []
    if first == ">":
        return read_fasta(path)
    if first == "@":
        return read_fastq(path)
    raise FormatError(f"{path}: cannot determine format from leading character {first!r}")


def write_fasta(path: str | os.PathLike, records: list[SequenceRecord], width: int = 70) -> None:
    """Write records as FASTA, wrapping sequence lines at ``width``."""
    if width < 1:
        raise ValueError("width must be >= 1")
    with open(path, "wt", encoding="ascii") as fh:
        for rec in records:
            fh.write(f">{rec.name}\n")
            seq = rec.sequence
            for i in range(0, len(seq), width):
                fh.write(seq[i : i + width] + "\n")


def write_fastq(path: str | os.PathLike, records: list[SequenceRecord]) -> None:
    """Write records as FASTQ; missing qualities become maximal ('I')."""
    with open(path, "wt", encoding="ascii") as fh:
        for rec in records:
            qual = rec.quality if rec.quality is not None else "I" * len(rec.sequence)
            if len(qual) != len(rec.sequence):
                raise FormatError(f"record {rec.name!r}: quality/sequence length mismatch")
            fh.write(f"@{rec.name}\n{rec.sequence}\n+\n{qual}\n")


def load_read_batch(path: str | os.PathLike) -> ReadBatch:
    """Load a FASTA/FASTQ file of equal-length reads as a :class:`ReadBatch`."""
    records = read_sequences(path)
    return ReadBatch.from_strs([rec.sequence for rec in records])


def save_read_batch(path: str | os.PathLike, batch: ReadBatch, fmt: str = "fastq") -> None:
    """Write a :class:`ReadBatch` to disk as FASTA or FASTQ."""
    records = [
        SequenceRecord(name=f"read_{i}", sequence=seq)
        for i, seq in enumerate(batch.iter_strs())
    ]
    if fmt == "fastq":
        write_fastq(path, records)
    elif fmt == "fasta":
        write_fasta(path, records)
    else:
        raise ValueError(f"unknown format {fmt!r}; expected 'fasta' or 'fastq'")


def split_input_file(path: str | os.PathLike, n_parts: int, out_dir: str | os.PathLike) -> list[Path]:
    """Split an input FASTA/FASTQ into ``n_parts`` near-equal files.

    This mirrors ParaHash Step 1 partitioning the input file to equal
    sizes before extracting reads.  Returns the written file paths.
    """
    records = read_sequences(path)
    if not records:
        raise FormatError(f"{path}: no records to split")
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    n_parts = min(n_parts, len(records))
    bounds = [round(i * len(records) / n_parts) for i in range(n_parts + 1)]
    is_fastq = records[0].quality is not None
    paths = []
    suffix = "fastq" if is_fastq else "fasta"
    for i in range(n_parts):
        part = records[bounds[i] : bounds[i + 1]]
        out_path = out_dir / f"part_{i:04d}.{suffix}"
        if is_fastq:
            write_fastq(out_path, part)
        else:
            write_fasta(out_path, part)
        paths.append(out_path)
    return paths
