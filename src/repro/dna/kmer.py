"""K-mer extraction, reverse complement and canonical form.

A *kmer* is a length-K substring of a read; every kmer generated from
the input reads is a candidate vertex of the De Bruijn graph (paper
§II-A).  Because a DNA sequence has a reverse complement, a graph vertex
is represented by the **canonical** kmer — the lexicographically smaller
of a kmer and its reverse complement — and the constructed graph is
bi-directed.

Two representations are provided:

* a **vectorized uint64 path** for ``K <= 31`` (the paper uses K = 27),
  where a kmer is the 2K low bits of a ``numpy.uint64`` and whole read
  batches are processed with array operations; and
* a **scalar Python-int path** for arbitrary K, used by the reference
  implementations and the multi-word hash-table keys.
"""

from __future__ import annotations

import numpy as np

from .alphabet import decode
from .encoding import int_to_codes

#: Largest K supported by the vectorized uint64 representation.
MAX_U64_K = 31

# Lookup table: byte value -> byte with its four 2-bit fields reversed.
# Used to reverse the base order of a packed uint64 kmer.
_PAIR_REVERSE = np.empty(256, dtype=np.uint8)
for _b in range(256):
    _PAIR_REVERSE[_b] = (
        ((_b & 0x03) << 6) | ((_b & 0x0C) << 2) | ((_b & 0x30) >> 2) | ((_b & 0xC0) >> 6)
    )


def kmer_mask(k: int) -> int:
    """Bit mask covering the 2K bits of a packed kmer."""
    _check_k(k)
    return (1 << (2 * k)) - 1


def _check_k(k: int) -> None:
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")


def _check_u64_k(k: int) -> None:
    _check_k(k)
    if k > MAX_U64_K:
        raise ValueError(f"uint64 kmer path requires k <= {MAX_U64_K}, got {k}")


# ---------------------------------------------------------------------------
# Vectorized uint64 path
# ---------------------------------------------------------------------------

def kmers_from_reads(codes: np.ndarray, k: int) -> np.ndarray:
    """Extract all kmers from a batch of equal-length reads.

    Parameters
    ----------
    codes:
        ``(n_reads, L)`` uint8 matrix of 2-bit base codes.
    k:
        Kmer length, at most :data:`MAX_U64_K`.

    Returns
    -------
    numpy.ndarray
        ``(n_reads, L - k + 1)`` uint64 matrix; element ``[i, j]`` is the
        packed kmer ``reads[i][j : j + k]``.
    """
    _check_u64_k(k)
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.ndim != 2:
        raise ValueError("codes must be a 2-D (n_reads, L) matrix")
    n, length = codes.shape
    if length < k:
        raise ValueError(f"read length {length} shorter than k={k}")
    n_kmers = length - k + 1
    out = np.empty((n, n_kmers), dtype=np.uint64)
    two = np.uint64(2)
    mask = np.uint64(kmer_mask(k))
    cur = np.zeros(n, dtype=np.uint64)
    for j in range(k):
        cur = (cur << two) | codes[:, j].astype(np.uint64)
    out[:, 0] = cur
    for j in range(k, length):
        cur = ((cur << two) | codes[:, j].astype(np.uint64)) & mask
        out[:, j - k + 1] = cur
    return out


def revcomp_u64(kmers: np.ndarray, k: int) -> np.ndarray:
    """Reverse complement of packed uint64 kmers, vectorized.

    Complementing a 2-bit code is ``code ^ 3``; reversing the base order
    of the packed word is done byte-wise with a pair-reversal lookup
    table followed by a shift to drop the padding.

    Accepts ``k`` up to 32 (a full word): the two-word big-K substrate
    reverse-complements its 32-base low plane through this function.
    """
    _check_k(k)
    if k > 32:
        raise ValueError(f"revcomp_u64 requires k <= 32, got {k}")
    kmers = np.ascontiguousarray(kmers, dtype=np.uint64)
    shape = kmers.shape
    flat = kmers.reshape(-1)
    mask = np.uint64(kmer_mask(k) & 0xFFFFFFFFFFFFFFFF)
    comp = (flat ^ mask) & mask
    as_bytes = comp.view(np.uint8).reshape(-1, 8)
    reversed_bytes = _PAIR_REVERSE[as_bytes[:, ::-1]]
    full = np.ascontiguousarray(reversed_bytes).view(np.uint64).reshape(-1)
    shift = np.uint64(64 - 2 * k)
    return (full >> shift).reshape(shape)


def canonical_u64(kmers: np.ndarray, k: int) -> np.ndarray:
    """Canonical form (minimum of kmer and reverse complement), vectorized."""
    rc = revcomp_u64(kmers, k)
    return np.minimum(np.asarray(kmers, dtype=np.uint64), rc)


def canonical_with_flip(kmers: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Canonical kmers plus a boolean flag marking which were flipped.

    ``flipped[i]`` is ``True`` when the canonical form is the reverse
    complement of the input kmer (the input was not canonical).  Edge
    direction bookkeeping in the graph needs this flag.
    """
    kmers = np.asarray(kmers, dtype=np.uint64)
    rc = revcomp_u64(kmers, k)
    flipped = rc < kmers
    return np.where(flipped, rc, kmers), flipped


# ---------------------------------------------------------------------------
# Scalar Python-int path (arbitrary K)
# ---------------------------------------------------------------------------

def kmer_from_codes(codes: np.ndarray) -> int:
    """Pack a code array into a Python-int kmer (arbitrary length)."""
    value = 0
    for c in np.asarray(codes, dtype=np.uint8):
        value = (value << 2) | int(c)
    return value


def revcomp_int(kmer: int, k: int) -> int:
    """Reverse complement of a Python-int kmer."""
    _check_k(k)
    out = 0
    for _ in range(k):
        out = (out << 2) | ((kmer & 0x3) ^ 0x3)
        kmer >>= 2
    return out


def canonical_int(kmer: int, k: int) -> int:
    """Canonical form of a Python-int kmer."""
    return min(kmer, revcomp_int(kmer, k))


def kmer_to_str(kmer: int, k: int) -> str:
    """Decode a packed kmer to its DNA string."""
    return decode(int_to_codes(int(kmer), k))


def iter_kmers(codes: np.ndarray, k: int):
    """Yield each packed kmer of a single read (reference implementation).

    Slow but obviously correct; used as ground truth in tests.
    """
    _check_k(k)
    codes = np.asarray(codes, dtype=np.uint8)
    for i in range(len(codes) - k + 1):
        yield kmer_from_codes(codes[i : i + k])
