"""Read batches: the in-memory unit of input data.

ParaHash processes its input partition by partition (paper §III-A): the
input file is split into equal-size pieces and reads are extracted from
each piece.  A :class:`ReadBatch` is one such piece — a matrix of
equal-length reads already translated to 2-bit codes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .alphabet import decode, encode


@dataclass(frozen=True)
class ReadBatch:
    """A batch of equal-length reads as a 2-bit code matrix.

    Attributes
    ----------
    codes:
        ``(n_reads, read_length)`` uint8 matrix with values in
        ``{0, 1, 2, 3}``.
    """

    codes: np.ndarray

    def __post_init__(self) -> None:
        codes = np.asarray(self.codes, dtype=np.uint8)
        if codes.ndim != 2:
            raise ValueError("ReadBatch codes must be 2-D (n_reads, read_length)")
        if codes.size and codes.max() > 3:
            raise ValueError("ReadBatch codes must be 2-bit base codes")
        object.__setattr__(self, "codes", codes)

    @property
    def n_reads(self) -> int:
        return int(self.codes.shape[0])

    @property
    def read_length(self) -> int:
        return int(self.codes.shape[1])

    @property
    def total_bases(self) -> int:
        return int(self.codes.size)

    def n_kmers(self, k: int) -> int:
        """Total kmers the batch generates: ``N * (L - K + 1)`` (§II-A)."""
        if k > self.read_length:
            raise ValueError(f"k={k} exceeds read length {self.read_length}")
        return self.n_reads * (self.read_length - k + 1)

    def __len__(self) -> int:
        return self.n_reads

    def read_str(self, i: int) -> str:
        """Decode read ``i`` to a DNA string."""
        return decode(self.codes[i])

    def iter_strs(self):
        """Yield every read as a DNA string."""
        for i in range(self.n_reads):
            yield self.read_str(i)

    @classmethod
    def from_strs(cls, reads: list[str]) -> "ReadBatch":
        """Build a batch from equal-length DNA strings."""
        if not reads:
            return cls(codes=np.zeros((0, 0), dtype=np.uint8))
        length = len(reads[0])
        for r in reads:
            if len(r) != length:
                raise ValueError(
                    f"all reads in a batch must have equal length; got {len(r)} != {length}"
                )
        return cls(codes=np.stack([encode(r) for r in reads]))

    def split(self, n_batches: int) -> list["ReadBatch"]:
        """Split into up to ``n_batches`` contiguous, near-equal batches.

        Mirrors ParaHash partitioning the input file to equal sizes in
        Step 1.  Returns fewer batches when there are fewer reads than
        requested; empty batches are never produced for non-empty input.
        """
        if n_batches < 1:
            raise ValueError("n_batches must be >= 1")
        if self.n_reads == 0:
            return [self]
        n_batches = min(n_batches, self.n_reads)
        bounds = np.linspace(0, self.n_reads, n_batches + 1).astype(int)
        return [
            ReadBatch(codes=self.codes[bounds[i] : bounds[i + 1]])
            for i in range(n_batches)
        ]


def concat_batches(batches: list[ReadBatch]) -> ReadBatch:
    """Concatenate batches of identical read length into one."""
    nonempty = [b for b in batches if b.n_reads]
    if not nonempty:
        return batches[0] if batches else ReadBatch(codes=np.zeros((0, 0), dtype=np.uint8))
    length = nonempty[0].read_length
    for b in nonempty:
        if b.read_length != length:
            raise ValueError("cannot concatenate batches with different read lengths")
    return ReadBatch(codes=np.concatenate([b.codes for b in nonempty], axis=0))
