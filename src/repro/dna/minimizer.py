"""Minimizers (P-minimum-substrings) and superkmer decomposition.

Definitions from the paper (§II-A):

* **P-minimum-substring** (Definition 1): for a kmer, the lexicographic
  minimum among all its length-P substrings.
* **Superkmer** (Definition 2): a maximal run of consecutive kmers of a
  read that share a common P-minimum-substring; that substring is the
  superkmer's **minimizer**.

Because adjacent kmers overlap by K-1 bases, they usually share their
minimizer, so a superkmer compacts M kmers from O(MK) to O(M + K)
space — the foundation of the Minimum Substring Partitioning (MSP)
algorithm that ParaHash builds on.

Minimizer values are packed 2-bit integers; since the code order is
lexicographic, integer comparison implements Definition 1's string
comparison.  The vectorized path computes each read's p-mer values with
a rolling update and each kmer's minimizer with a doubling
sliding-window minimum, giving O(L log K) work per read instead of the
naive O(LKP).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .kmer import canonical_int, canonical_u64, kmer_from_codes, kmers_from_reads


def sliding_min(values: np.ndarray, window: int) -> np.ndarray:
    """Sliding-window minimum along the last axis.

    Uses the doubling (sparse-table style) technique: after ``ceil(log2
    window)`` passes, ``out[..., i]`` is the minimum of
    ``values[..., i : i + window]``.

    Parameters
    ----------
    values:
        ``(..., m)`` array.
    window:
        Window width, ``1 <= window <= m``.
    """
    values = np.asarray(values)
    m = values.shape[-1]
    if not 1 <= window <= m:
        raise ValueError(f"window must be in [1, {m}], got {window}")
    if window == 1:
        # Wider windows return freshly allocated arrays; the degenerate
        # window must not hand back an aliased view of the input.
        return values.copy()
    out = values
    covered = 1
    while covered < window:
        shift = min(covered, window - covered)
        out = np.minimum(out[..., : out.shape[-1] - shift], out[..., shift:])
        covered += shift
    return out


def minimizers_for_reads(
    codes: np.ndarray, k: int, p: int, canonical: bool = True
) -> np.ndarray:
    """Minimizer of every kmer in a batch of equal-length reads.

    Parameters
    ----------
    codes:
        ``(n_reads, L)`` uint8 matrix of base codes.
    k, p:
        Kmer length and minimizer length, ``1 <= p <= k``.
    canonical:
        When ``True`` (the default), each length-P substring is taken in
        its canonical form (minimum of itself and its reverse
        complement) before the window minimum.  This makes the
        minimizer **strand-invariant**: a kmer and its reverse
        complement get the same minimizer, so both orientations of a
        graph vertex are routed to the same partition.  Vertex-disjoint
        partitioning — the MSP guarantee the paper relies on for
        bi-directed graphs — requires it.  ``False`` gives the literal
        Definition 1 (plain lexicographic minimum substring).

    Returns
    -------
    numpy.ndarray
        ``(n_reads, L - k + 1)`` uint64 matrix of packed minimizer
        values; ``[i, j]`` is the P-minimum-substring of kmer ``j`` of
        read ``i``.
    """
    _check_kp(k, p)
    pmers = kmers_from_reads(codes, p)  # (n, L - p + 1)
    if canonical:
        pmers = canonical_u64(pmers, p)
    window = k - p + 1  # p-mers per kmer
    return sliding_min(pmers, window)


def _check_kp(k: int, p: int) -> None:
    if not 1 <= p <= k:
        raise ValueError(f"minimizer length p must satisfy 1 <= p <= k, got p={p}, k={k}")


@dataclass(frozen=True)
class SuperkmerSet:
    """Superkmers of a read batch, as a structure of arrays.

    Attributes
    ----------
    read_idx:
        Read index of each superkmer.
    start:
        Index (within the read) of the superkmer's first kmer; the
        superkmer spans bases ``[start, start + n_kmers + k - 2]``.
    n_kmers:
        Number of kmers the superkmer contains; its base length is
        ``n_kmers + k - 1``.
    minimizer:
        Packed minimizer value shared by all its kmers.
    k:
        Kmer length the decomposition used.
    read_length:
        Length of every read in the batch.
    """

    read_idx: np.ndarray
    start: np.ndarray
    n_kmers: np.ndarray
    minimizer: np.ndarray
    k: int
    read_length: int

    def __len__(self) -> int:
        return int(self.read_idx.size)

    @property
    def base_lengths(self) -> np.ndarray:
        """Base length of each superkmer (``n_kmers + k - 1``)."""
        return self.n_kmers + (self.k - 1)

    def total_kmers(self) -> int:
        """Total kmers across all superkmers."""
        return int(self.n_kmers.sum())


def superkmers_for_reads(
    codes: np.ndarray, k: int, p: int, canonical: bool = True
) -> SuperkmerSet:
    """Decompose a batch of equal-length reads into superkmers.

    Consecutive kmers with equal minimizer *values* are grouped; a new
    superkmer starts at every read start and at every minimizer change.
    The output order is row-major (all superkmers of read 0 first, in
    left-to-right order), which downstream code relies on.
    """
    codes = np.asarray(codes, dtype=np.uint8)
    minis = minimizers_for_reads(codes, k, p, canonical=canonical)  # (n, nk)
    n, n_kmers = minis.shape
    change = np.ones(minis.shape, dtype=bool)
    change[:, 1:] = minis[:, 1:] != minis[:, :-1]
    read_idx, starts = np.nonzero(change)
    # The end of each superkmer is the start of the next one in the same
    # read, or n_kmers for the last superkmer of a read.  np.nonzero is
    # row-major so boundaries line up with shifted arrays.
    ends = np.empty_like(starts)
    if starts.size:
        same_read = np.empty(starts.size, dtype=bool)
        same_read[:-1] = read_idx[:-1] == read_idx[1:]
        same_read[-1] = False
        ends[:-1] = np.where(same_read[:-1], starts[1:], n_kmers)
        ends[-1] = n_kmers
    return SuperkmerSet(
        read_idx=read_idx.astype(np.int64),
        start=starts.astype(np.int32),
        n_kmers=(ends - starts).astype(np.int32),
        minimizer=minis[read_idx, starts],
        k=k,
        read_length=codes.shape[1],
    )


# ---------------------------------------------------------------------------
# Reference implementations (slow, obviously correct; used in tests)
# ---------------------------------------------------------------------------

def minimizer_of_kmer_ref(codes: np.ndarray, p: int, canonical: bool = True) -> int:
    """Reference P-minimum-substring of a single kmer (Definition 1).

    With ``canonical`` the substrings are canonicalized first (the
    strand-invariant variant the partitioner uses).
    """
    codes = np.asarray(codes, dtype=np.uint8)
    k = len(codes)
    _check_kp(k, p)
    values = (kmer_from_codes(codes[i : i + p]) for i in range(k - p + 1))
    if canonical:
        return min(canonical_int(v, p) for v in values)
    return min(values)


def superkmers_of_read_ref(
    codes: np.ndarray, k: int, p: int, canonical: bool = True
) -> list[tuple[int, int, int]]:
    """Reference superkmer decomposition of one read (Definition 2).

    Returns ``(start_kmer_index, n_kmers, minimizer)`` tuples in
    left-to-right order.
    """
    codes = np.asarray(codes, dtype=np.uint8)
    _check_kp(k, p)
    n_kmers = len(codes) - k + 1
    if n_kmers <= 0:
        raise ValueError(f"read of length {len(codes)} has no kmers for k={k}")
    minis = [
        minimizer_of_kmer_ref(codes[i : i + k], p, canonical=canonical)
        for i in range(n_kmers)
    ]
    groups: list[tuple[int, int, int]] = []
    start = 0
    for i in range(1, n_kmers + 1):
        if i == n_kmers or minis[i] != minis[start]:
            groups.append((start, i - start, minis[start]))
            start = i
    return groups
