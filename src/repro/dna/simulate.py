"""Synthetic genomes and shotgun read simulation.

The paper evaluates on the two largest GAGE datasets (Human Chr14,
9.4 GB fastq, and Bumblebee, 92 GB; Table I).  Those files are not
available here, so this module generates the closest synthetic
equivalent: a random genome of a configurable size, sampled by
fixed-length shotgun reads from both strands, with **per-read error
counts drawn from a Poisson distribution** — exactly the error model
assumed by the paper's Property 1 ("the event that the number of errors
occurs in a read follows a Poisson distribution", with λ errors per read
on average, typically 1–2).

Because every quantity the evaluation depends on (N, L, λ, genome size,
coverage, distinct/duplicate vertex ratio) is controlled here, the
benchmark tables and figures reproduce the paper's *shapes* at a scale a
laptop can run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .alphabet import ALPHABET_SIZE, decode
from .reads import ReadBatch


def random_genome(size: int, seed: int = 0) -> np.ndarray:
    """Uniform random genome of ``size`` bases as 2-bit codes."""
    if size < 1:
        raise ValueError("genome size must be >= 1")
    rng = np.random.default_rng(seed)
    return rng.integers(0, ALPHABET_SIZE, size=size, dtype=np.uint8)


def repetitive_genome(size: int, repeat_fraction: float = 0.2, repeat_length: int = 500,
                      seed: int = 0) -> np.ndarray:
    """Random genome with planted exact repeats.

    Real genomes contain repeated regions, which is what makes De Bruijn
    graphs branch.  A ``repeat_fraction`` of the genome is covered by
    copies of a single ``repeat_length`` template inserted at random
    positions.
    """
    if not 0.0 <= repeat_fraction < 1.0:
        raise ValueError("repeat_fraction must be in [0, 1)")
    genome = random_genome(size, seed=seed)
    if repeat_fraction == 0.0 or repeat_length >= size:
        return genome
    rng = np.random.default_rng(seed + 1)
    template = rng.integers(0, ALPHABET_SIZE, size=repeat_length, dtype=np.uint8)
    n_copies = max(1, int(size * repeat_fraction / repeat_length))
    for _ in range(n_copies):
        pos = int(rng.integers(0, size - repeat_length + 1))
        genome[pos : pos + repeat_length] = template
    return genome


def simulate_reads(
    genome: np.ndarray,
    n_reads: int,
    read_length: int,
    mean_errors: float = 1.0,
    seed: int = 0,
    both_strands: bool = True,
) -> ReadBatch:
    """Sample shotgun reads from a genome with Poisson substitution errors.

    Parameters
    ----------
    genome:
        Genome as a 1-D uint8 code array.
    n_reads:
        Number of reads N.
    read_length:
        Read length L (bases).
    mean_errors:
        λ — the mean number of substitution errors per read.  Error
        positions are uniform within the read; the substituted base is
        always different from the original.
    seed:
        RNG seed; the whole simulation is deterministic given the seed.
    both_strands:
        Sample each read from the forward or reverse strand with equal
        probability (real sequencing reads either strand).
    """
    genome = np.asarray(genome, dtype=np.uint8)
    if read_length > genome.size:
        raise ValueError(f"read length {read_length} exceeds genome size {genome.size}")
    if n_reads < 0:
        raise ValueError("n_reads must be >= 0")
    if mean_errors < 0:
        raise ValueError("mean_errors must be >= 0")
    rng = np.random.default_rng(seed)
    starts = rng.integers(0, genome.size - read_length + 1, size=n_reads)
    # Gather reads as a matrix with one vectorized fancy-index.
    offsets = np.arange(read_length)
    codes = genome[starts[:, None] + offsets[None, :]].astype(np.uint8)
    if both_strands and n_reads:
        flip = rng.random(n_reads) < 0.5
        # Reverse complement the flipped rows: complement is code ^ 3.
        codes[flip] = (codes[flip, ::-1] ^ 3).astype(np.uint8)
    if mean_errors > 0 and n_reads:
        n_errors = rng.poisson(mean_errors, size=n_reads)
        n_errors = np.minimum(n_errors, read_length)
        total = int(n_errors.sum())
        if total:
            rows = np.repeat(np.arange(n_reads), n_errors)
            cols = rng.integers(0, read_length, size=total)
            # Substitute with a guaranteed-different base: add 1..3 mod 4.
            bump = rng.integers(1, ALPHABET_SIZE, size=total).astype(np.uint8)
            codes[rows, cols] = (codes[rows, cols] + bump) % ALPHABET_SIZE
    return ReadBatch(codes=codes)


@dataclass(frozen=True)
class DatasetProfile:
    """A named synthetic dataset specification.

    The two built-in profiles mirror the statistics of the paper's
    Table I datasets at laptop scale: read length, coverage
    (``N * L / Ge``), error rate λ, and the roughly 10x ratio between the
    two graph sizes are preserved; absolute sizes are scaled down.
    """

    name: str
    genome_size: int
    read_length: int
    coverage: float
    mean_errors: float
    repeat_fraction: float = 0.05
    seed: int = 2017

    @property
    def n_reads(self) -> int:
        """N = coverage * Ge / L, rounded."""
        return max(1, round(self.coverage * self.genome_size / self.read_length))

    @property
    def total_bases(self) -> int:
        return self.n_reads * self.read_length

    def scaled(self, factor: float) -> "DatasetProfile":
        """A copy with the genome size scaled by ``factor``."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return replace(self, genome_size=max(1, int(self.genome_size * factor)))

    def generate(self) -> tuple[np.ndarray, ReadBatch]:
        """Generate the genome and its read set deterministically."""
        genome = repetitive_genome(
            self.genome_size, repeat_fraction=self.repeat_fraction, seed=self.seed
        )
        reads = simulate_reads(
            genome,
            n_reads=self.n_reads,
            read_length=self.read_length,
            mean_errors=self.mean_errors,
            seed=self.seed + 1,
        )
        return genome, reads

    def generate_reads(self) -> ReadBatch:
        """Generate only the read set."""
        return self.generate()[1]


# Paper Table I analogues, scaled to laptop size.  Human Chr14: L=101,
# coverage ~42x, 9.4 GB.  Bumblebee: L=124, coverage ~150x in the
# original (92 GB over 250 Mbp); we keep the ~10x graph-size ratio
# between the two by genome size rather than coverage so benchmarks stay
# tractable.
HUMAN_CHR14_LIKE = DatasetProfile(
    name="human_chr14_like",
    genome_size=100_000,
    read_length=101,
    coverage=42.0,
    mean_errors=0.6,
)

BUMBLEBEE_LIKE = DatasetProfile(
    name="bumblebee_like",
    genome_size=400_000,
    read_length=124,
    coverage=35.0,
    mean_errors=0.6,
)

#: Small profile for tests and the quickstart example.
TOY = DatasetProfile(
    name="toy",
    genome_size=5_000,
    read_length=80,
    coverage=12.0,
    mean_errors=0.5,
    repeat_fraction=0.0,
)

PROFILES = {p.name: p for p in (HUMAN_CHR14_LIKE, BUMBLEBEE_LIKE, TOY)}


def genome_to_str(genome: np.ndarray) -> str:
    """Decode a genome code array into a DNA string (for writing FASTA)."""
    return decode(genome)


def mutate_genome(genome: np.ndarray, n_snps: int, seed: int = 0) -> np.ndarray:
    """A related strain: the genome with ``n_snps`` random substitutions.

    Positions are sampled without replacement; each substituted base is
    guaranteed different from the original.  Used to simulate two
    strains of one organism for graph-comparison workflows.
    """
    genome = np.asarray(genome, dtype=np.uint8)
    if not 0 <= n_snps <= genome.size:
        raise ValueError("n_snps must be in [0, genome size]")
    mutated = genome.copy()
    if n_snps:
        rng = np.random.default_rng(seed)
        positions = rng.choice(genome.size, size=n_snps, replace=False)
        bump = rng.integers(1, ALPHABET_SIZE, size=n_snps).astype(np.uint8)
        mutated[positions] = (mutated[positions] + bump) % ALPHABET_SIZE
    return mutated
