"""Bit-packed sequence encoding.

ParaHash encodes reads, k-mers and superkmers with 2 bits per base
(paper §III-B): "a character in reads or superkmers can be represented
with log2(4) bits".  The encoded MSP output is about 1/4 the size of the
text format, which is one of the paper's claimed IO savings.

Two packed representations are used throughout the library:

* **byte-packed** (`pack_codes` / `unpack_codes`): 4 bases per byte,
  first base in the *most significant* bit pair.  Used for partition
  files on disk (``repro.msp.binio``).
* **integer-packed** (`codes_to_int` / `int_to_codes`): the whole
  sequence as one big integer, first base most significant.  Because the
  code order is lexicographic, integer comparison of two equal-length
  packed sequences matches lexicographic string comparison.  Used for
  k-mers and minimizers.
"""

from __future__ import annotations

import numpy as np

from .alphabet import BITS_PER_BASE

#: How many bases fit into one packed byte.
BASES_PER_BYTE = 8 // BITS_PER_BASE


def packed_size(n_bases: int) -> int:
    """Number of bytes needed to byte-pack ``n_bases`` bases."""
    if n_bases < 0:
        raise ValueError("n_bases must be non-negative")
    return (n_bases + BASES_PER_BYTE - 1) // BASES_PER_BYTE


def pack_codes(codes: np.ndarray) -> bytes:
    """Pack 2-bit base codes into bytes, 4 bases per byte.

    The first base occupies the most significant two bits of the first
    byte; the final byte is zero-padded on the low end.
    """
    codes = np.asarray(codes, dtype=np.uint8)
    n = codes.size
    if n == 0:
        return b""
    padded = np.zeros(packed_size(n) * BASES_PER_BYTE, dtype=np.uint8)
    padded[:n] = codes
    quads = padded.reshape(-1, BASES_PER_BYTE)
    packed = (
        (quads[:, 0] << 6) | (quads[:, 1] << 4) | (quads[:, 2] << 2) | quads[:, 3]
    ).astype(np.uint8)
    return packed.tobytes()


def unpack_codes(data: bytes, n_bases: int) -> np.ndarray:
    """Inverse of :func:`pack_codes`.

    Parameters
    ----------
    data:
        Byte-packed sequence.
    n_bases:
        Number of bases originally packed (the padding is discarded).
    """
    if n_bases == 0:
        return np.zeros(0, dtype=np.uint8)
    need = packed_size(n_bases)
    if len(data) < need:
        raise ValueError(
            f"packed data too short: need {need} bytes for {n_bases} bases, got {len(data)}"
        )
    raw = np.frombuffer(data[:need], dtype=np.uint8)
    out = np.empty(need * BASES_PER_BYTE, dtype=np.uint8)
    out[0::4] = (raw >> 6) & 0x3
    out[1::4] = (raw >> 4) & 0x3
    out[2::4] = (raw >> 2) & 0x3
    out[3::4] = raw & 0x3
    return out[:n_bases]


def codes_to_int(codes: np.ndarray) -> int:
    """Pack base codes into a single integer, first base most significant.

    Works for sequences of any length (Python integers are unbounded).
    For two equal-length sequences, integer order equals lexicographic
    order of the decoded strings.
    """
    value = 0
    for c in np.asarray(codes, dtype=np.uint8):
        value = (value << BITS_PER_BASE) | int(c)
    return value


def int_to_codes(value: int, n_bases: int) -> np.ndarray:
    """Inverse of :func:`codes_to_int` for a known sequence length."""
    if value < 0:
        raise ValueError("packed value must be non-negative")
    if n_bases < 0:
        raise ValueError("n_bases must be non-negative")
    out = np.empty(n_bases, dtype=np.uint8)
    for i in range(n_bases - 1, -1, -1):
        out[i] = value & 0x3
        value >>= BITS_PER_BASE
    if value:
        raise ValueError("packed value has more bases than n_bases")
    return out


def int_to_words(value: int, n_bases: int, word_bits: int = 64) -> tuple[int, ...]:
    """Split an integer-packed sequence into fixed-width machine words.

    ParaHash stores a k-mer key over multiple memory words (paper §II-B,
    "a kmer should be stored in multiple memory words").  The most
    significant word comes first.  The number of words is
    ``ceil(n_bases * 2 / word_bits)``.
    """
    n_words = words_for_bases(n_bases, word_bits)
    mask = (1 << word_bits) - 1
    words = []
    for i in range(n_words):
        shift = word_bits * (n_words - 1 - i)
        words.append((value >> shift) & mask)
    return tuple(words)


def words_to_int(words: tuple[int, ...] | list[int], word_bits: int = 64) -> int:
    """Inverse of :func:`int_to_words`."""
    value = 0
    for w in words:
        value = (value << word_bits) | int(w)
    return value


def words_for_bases(n_bases: int, word_bits: int = 64) -> int:
    """Number of ``word_bits``-wide words needed for ``n_bases`` bases."""
    bits = n_bases * BITS_PER_BASE
    return max(1, (bits + word_bits - 1) // word_bits)
