"""Paired-end read simulation and interleaved FASTQ I/O.

Real NGS runs (including the GAGE datasets of Table I) are paired-end:
fragments of a known insert-size distribution are sequenced from both
ends, giving an R1 (forward) and an R2 (reverse-complemented far end)
per fragment.  De Bruijn graph construction treats the mates as
independent reads — both ends feed kmers — so ParaHash consumes a
paired dataset as a plain :class:`ReadBatch`; the pairing metadata
matters to downstream scaffolding, which is out of scope here, but the
simulator and interleaved-file round trip make the input side faithful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .alphabet import ALPHABET_SIZE
from .io import SequenceRecord, read_sequences, write_fastq
from .reads import ReadBatch


@dataclass(frozen=True)
class PairedReads:
    """Mated read batches: row i of R1 pairs with row i of R2."""

    r1: ReadBatch
    r2: ReadBatch

    def __post_init__(self) -> None:
        if self.r1.n_reads != self.r2.n_reads:
            raise ValueError("R1 and R2 must have the same number of reads")
        if self.r1.read_length != self.r2.read_length:
            raise ValueError("R1 and R2 must have the same read length")

    @property
    def n_pairs(self) -> int:
        return self.r1.n_reads

    def as_single_batch(self) -> ReadBatch:
        """All mates as one batch — the graph-construction input."""
        return ReadBatch(codes=np.concatenate([self.r1.codes, self.r2.codes]))


def simulate_paired_reads(
    genome: np.ndarray,
    n_pairs: int,
    read_length: int,
    insert_mean: float,
    insert_std: float = 0.0,
    mean_errors: float = 1.0,
    seed: int = 0,
) -> PairedReads:
    """Sample paired-end reads with a Gaussian insert-size distribution.

    Each fragment is placed uniformly; R1 reads its 5' end forward, R2
    reads its 3' end reverse-complemented (standard FR orientation).
    Substitution errors follow the same per-read Poisson model as
    :func:`repro.dna.simulate.simulate_reads`.
    """
    genome = np.asarray(genome, dtype=np.uint8)
    if insert_mean < read_length:
        raise ValueError("insert size must be >= read length")
    if insert_mean > genome.size:
        raise ValueError("insert size exceeds genome size")
    if n_pairs < 0:
        raise ValueError("n_pairs must be >= 0")
    rng = np.random.default_rng(seed)
    inserts = np.clip(
        np.round(rng.normal(insert_mean, insert_std, size=n_pairs)).astype(int),
        read_length,
        genome.size,
    )
    starts = np.array([
        int(rng.integers(0, genome.size - ins + 1)) for ins in inserts
    ], dtype=np.int64) if n_pairs else np.zeros(0, dtype=np.int64)

    offsets = np.arange(read_length)
    r1 = genome[starts[:, None] + offsets[None, :]].astype(np.uint8) \
        if n_pairs else np.zeros((0, read_length), dtype=np.uint8)
    ends = starts + inserts - read_length
    r2_fwd = genome[ends[:, None] + offsets[None, :]].astype(np.uint8) \
        if n_pairs else np.zeros((0, read_length), dtype=np.uint8)
    r2 = (r2_fwd[:, ::-1] ^ 3).astype(np.uint8)  # reverse complement

    def add_errors(codes: np.ndarray, sub_seed: int) -> np.ndarray:
        if mean_errors <= 0 or not codes.size:
            return codes
        err_rng = np.random.default_rng(sub_seed)
        n_errors = np.minimum(
            err_rng.poisson(mean_errors, size=codes.shape[0]), read_length
        )
        total = int(n_errors.sum())
        if total:
            rows = np.repeat(np.arange(codes.shape[0]), n_errors)
            cols = err_rng.integers(0, read_length, size=total)
            bump = err_rng.integers(1, ALPHABET_SIZE, size=total).astype(np.uint8)
            codes[rows, cols] = (codes[rows, cols] + bump) % ALPHABET_SIZE
        return codes

    return PairedReads(
        r1=ReadBatch(codes=add_errors(r1, seed + 1)),
        r2=ReadBatch(codes=add_errors(r2, seed + 2)),
    )


def write_interleaved_fastq(path, pairs: PairedReads) -> None:
    """Write mates interleaved (R1, R2, R1, R2, ...) with /1 /2 names."""
    records = []
    for i in range(pairs.n_pairs):
        records.append(SequenceRecord(name=f"pair_{i}/1",
                                      sequence=pairs.r1.read_str(i)))
        records.append(SequenceRecord(name=f"pair_{i}/2",
                                      sequence=pairs.r2.read_str(i)))
    write_fastq(path, records)


def read_interleaved_fastq(path) -> PairedReads:
    """Read an interleaved FASTQ back into mated batches."""
    records = read_sequences(path)
    if len(records) % 2:
        raise ValueError(f"{path}: interleaved file has an odd record count")
    r1 = ReadBatch.from_strs([r.sequence for r in records[0::2]])
    r2 = ReadBatch.from_strs([r.sequence for r in records[1::2]])
    return PairedReads(r1=r1, r2=r2)
