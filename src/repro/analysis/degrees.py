"""Degree and branching statistics of a De Bruijn graph.

Branching structure determines assembly difficulty (and bcalm2's
junction-kmer MPHF cost); these statistics summarize it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.dbg import IN_BASE, OUT_BASE, DeBruijnGraph


@dataclass(frozen=True)
class DegreeSummary:
    """Degree structure of a graph."""

    out_degree_histogram: tuple[int, ...]  # index = #distinct out edges (0..4)
    in_degree_histogram: tuple[int, ...]
    n_junctions: int  # out-degree > 1 or in-degree > 1
    n_tips: int  # degree 0 on at least one side
    n_simple: int  # exactly one edge on each side
    mean_total_degree: float


def out_degrees(graph: DeBruijnGraph) -> np.ndarray:
    """Distinct out-edge count per vertex (0..4)."""
    return (graph.counts[:, OUT_BASE : OUT_BASE + 4] > 0).sum(axis=1)


def in_degrees(graph: DeBruijnGraph) -> np.ndarray:
    """Distinct in-edge count per vertex (0..4)."""
    return (graph.counts[:, IN_BASE : IN_BASE + 4] > 0).sum(axis=1)


def degree_summary(graph: DeBruijnGraph) -> DegreeSummary:
    """Compute the full degree summary in one pass."""
    out_d = out_degrees(graph)
    in_d = in_degrees(graph)
    out_hist = np.bincount(out_d, minlength=5)
    in_hist = np.bincount(in_d, minlength=5)
    junctions = int(((out_d > 1) | (in_d > 1)).sum())
    tips = int(((out_d == 0) | (in_d == 0)).sum())
    simple = int(((out_d == 1) & (in_d == 1)).sum())
    n = max(1, graph.n_vertices)
    return DegreeSummary(
        out_degree_histogram=tuple(int(v) for v in out_hist),
        in_degree_histogram=tuple(int(v) for v in in_hist),
        n_junctions=junctions,
        n_tips=tips,
        n_simple=simple,
        mean_total_degree=float((out_d + in_d).sum() / n),
    )


def branching_fraction(graph: DeBruijnGraph) -> float:
    """Fraction of vertices that are junctions."""
    if graph.n_vertices == 0:
        return 0.0
    return degree_summary(graph).n_junctions / graph.n_vertices
