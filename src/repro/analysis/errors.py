"""Error-rate estimation: Property 1 run backwards.

The paper uses the error model (Poisson errors per read, each error
corrupting ~E[Y|X=1] kmers) to predict the graph size from λ.  Given a
*constructed* graph, the same relation can be inverted: the number of
erroneous vertices — approximately the vertices the spectrum classifies
as errors — estimates λ:

    n_error_vertices ≈ N · λ · E[Y | X = 1]
    λ ≈ n_error_vertices / (N · E[Y | X = 1])

This is a practical diagnostic (is this run's error rate what the
sizing policy assumed?) and a good numerical check of the Property 1
machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.estimator import expected_erroneous_kmers_per_error
from ..graph.dbg import DeBruijnGraph
from .spectrum import analyze_spectrum


@dataclass(frozen=True)
class ErrorRateEstimate:
    """Inferred sequencing-error statistics."""

    lam: float  # estimated mean errors per read
    n_error_vertices: int
    per_error_kmers: float  # E[Y | X=1] used in the inversion
    per_base_rate: float  # lam / read_length


def estimate_error_rate(
    graph: DeBruijnGraph, n_reads: int, read_length: int
) -> ErrorRateEstimate:
    """Estimate λ (mean errors per read) from the constructed graph.

    Uses the spectrum's error-vertex count and the exact per-error kmer
    expectation from the appendix proof.  Biased slightly low when
    distinct errors collide on the same kmer, slightly high when
    genome kmers fall below the spectrum threshold; accurate to ~20% at
    realistic coverage in the test suite.
    """
    if n_reads < 1 or read_length < graph.k:
        raise ValueError("need n_reads >= 1 and read_length >= k")
    summary = analyze_spectrum(graph)
    per_error = expected_erroneous_kmers_per_error(read_length, graph.k)
    lam = summary.n_error_vertices / (n_reads * per_error)
    return ErrorRateEstimate(
        lam=lam,
        n_error_vertices=summary.n_error_vertices,
        per_error_kmers=per_error,
        per_base_rate=lam / read_length,
    )
