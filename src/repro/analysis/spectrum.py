"""K-mer multiplicity spectrum analysis.

The multiplicity counters ParaHash records per vertex (the paper notes
most standalone constructors omit them, §II-B) enable the classic
spectrum analyses: the histogram of vertex multiplicities has an error
spike at 1 and a genomic peak near the coverage; from it one can
estimate coverage, genome size, and a sensible error-filter threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.dbg import MULT_SLOT, DeBruijnGraph


def multiplicity_histogram(graph: DeBruijnGraph, max_mult: int = 256) -> np.ndarray:
    """``hist[m]`` = number of vertices seen exactly ``m`` times
    (``hist[max_mult]`` aggregates the tail)."""
    mult = np.minimum(graph.counts[:, MULT_SLOT], np.uint64(max_mult))
    return np.bincount(mult.astype(np.int64), minlength=max_mult + 1)


@dataclass(frozen=True)
class SpectrumSummary:
    """What the spectrum says about the dataset."""

    coverage_peak: int  # multiplicity of the genomic mode
    error_threshold: int  # first local minimum between spike and peak
    estimated_genome_size: int  # vertices above the threshold
    n_error_vertices: int  # vertices at or below the threshold
    estimated_kmer_coverage: float  # weighted mean multiplicity of genomic part


def analyze_spectrum(graph: DeBruijnGraph, max_mult: int = 256) -> SpectrumSummary:
    """Locate the error spike and genomic peak, derive the estimates.

    The error threshold is the first local minimum of the histogram
    after multiplicity 1; the coverage peak is the histogram mode above
    that threshold.
    """
    hist = multiplicity_histogram(graph, max_mult)
    # First local minimum after m=1 (the valley between errors and genome).
    threshold = 1
    for m in range(2, max_mult):
        if hist[m] <= hist[m - 1] and hist[m] <= hist[m + 1]:
            threshold = m
            break
    genomic = hist[threshold + 1 :]
    if genomic.sum() == 0:
        peak = threshold
    else:
        peak = threshold + 1 + int(np.argmax(genomic))
    mults = np.arange(threshold + 1, max_mult + 1)
    weight = hist[threshold + 1 :].astype(float)
    est_cov = float((mults * weight).sum() / weight.sum()) if weight.sum() else 0.0
    n_genomic = int(hist[threshold + 1 :].sum())
    n_errors = int(hist[1 : threshold + 1].sum())
    return SpectrumSummary(
        coverage_peak=peak,
        error_threshold=threshold,
        estimated_genome_size=n_genomic,
        n_error_vertices=n_errors,
        estimated_kmer_coverage=est_cov,
    )


def estimate_genome_size_from_instances(
    graph: DeBruijnGraph, max_mult: int = 256
) -> float:
    """Classic estimator: total kmer instances / coverage peak.

    More robust than counting vertices when coverage is uneven.
    """
    summary = analyze_spectrum(graph, max_mult)
    if summary.coverage_peak == 0:
        return 0.0
    return graph.total_kmer_instances() / summary.coverage_peak
