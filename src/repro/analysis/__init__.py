"""Graph analysis: multiplicity spectra, degree structure, error rates."""

from .degrees import (
    DegreeSummary,
    branching_fraction,
    degree_summary,
    in_degrees,
    out_degrees,
)
from .errors import ErrorRateEstimate, estimate_error_rate
from .spectrum import (
    SpectrumSummary,
    analyze_spectrum,
    estimate_genome_size_from_instances,
    multiplicity_histogram,
)

__all__ = [
    "DegreeSummary",
    "ErrorRateEstimate",
    "SpectrumSummary",
    "analyze_spectrum",
    "branching_fraction",
    "degree_summary",
    "estimate_error_rate",
    "estimate_genome_size_from_instances",
    "in_degrees",
    "multiplicity_histogram",
    "out_degrees",
]
